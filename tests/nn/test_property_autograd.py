"""Property-based tests (hypothesis) for the autograd engine."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.nn import Tensor
from repro.nn import functional as F

finite_floats = st.floats(
    min_value=-10.0, max_value=10.0, allow_nan=False, allow_infinity=False
)


def small_arrays(min_side=1, max_side=4, max_dims=3):
    return arrays(
        dtype=np.float64,
        shape=array_shapes(min_dims=1, max_dims=max_dims, min_side=min_side, max_side=max_side),
        elements=finite_floats,
    )


class TestAlgebraicGradients:
    @given(small_arrays())
    @settings(max_examples=40, deadline=None)
    def test_sum_gradient_is_ones(self, data):
        x = Tensor(data, requires_grad=True)
        x.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones_like(data))

    @given(small_arrays(), finite_floats)
    @settings(max_examples=40, deadline=None)
    def test_scalar_multiplication_scales_gradient(self, data, scalar):
        x = Tensor(data, requires_grad=True)
        (x * scalar).sum().backward()
        np.testing.assert_allclose(x.grad, np.full_like(data, scalar))

    @given(small_arrays())
    @settings(max_examples=40, deadline=None)
    def test_addition_gradient_distributes(self, data):
        a = Tensor(data, requires_grad=True)
        b = Tensor(data.copy(), requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones_like(data))
        np.testing.assert_allclose(b.grad, np.ones_like(data))

    @given(small_arrays())
    @settings(max_examples=40, deadline=None)
    def test_product_rule(self, data):
        # d(x*x)/dx = 2x
        x = Tensor(data, requires_grad=True)
        (x * x).sum().backward()
        np.testing.assert_allclose(x.grad, 2 * data, atol=1e-12)

    @given(small_arrays())
    @settings(max_examples=40, deadline=None)
    def test_detach_blocks_gradient(self, data):
        x = Tensor(data, requires_grad=True)
        (x.detach() * 3.0).sum()
        assert x.grad is None

    @given(small_arrays())
    @settings(max_examples=40, deadline=None)
    def test_relu_gradient_bounded_by_one(self, data):
        x = Tensor(data, requires_grad=True)
        x.relu().sum().backward()
        assert np.all((x.grad == 0) | (x.grad == 1))

    @given(small_arrays())
    @settings(max_examples=40, deadline=None)
    def test_sigmoid_gradient_range(self, data):
        x = Tensor(data, requires_grad=True)
        x.sigmoid().sum().backward()
        assert np.all(x.grad >= 0)
        assert np.all(x.grad <= 0.25 + 1e-12)

    @given(small_arrays())
    @settings(max_examples=40, deadline=None)
    def test_mean_equals_scaled_sum(self, data):
        x1 = Tensor(data, requires_grad=True)
        x1.mean().backward()
        x2 = Tensor(data, requires_grad=True)
        (x2.sum() * (1.0 / data.size)).backward()
        np.testing.assert_allclose(x1.grad, x2.grad, atol=1e-12)


class TestSoftmaxProperties:
    @given(
        arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(1, 5), st.integers(2, 6)),
            elements=finite_floats,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_softmax_is_distribution(self, logits):
        probs = F.softmax(Tensor(logits), axis=1).data
        assert np.all(probs >= 0)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, atol=1e-9)

    @given(
        arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(1, 5), st.integers(2, 6)),
            elements=finite_floats,
        ),
        st.floats(min_value=-50, max_value=50),
    )
    @settings(max_examples=40, deadline=None)
    def test_softmax_shift_invariance(self, logits, shift):
        a = F.softmax(Tensor(logits), axis=1).data
        b = F.softmax(Tensor(logits + shift), axis=1).data
        np.testing.assert_allclose(a, b, atol=1e-9)

    @given(
        arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(1, 4), st.integers(2, 5)),
            elements=finite_floats,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_log_softmax_consistent_with_softmax(self, logits):
        log_probs = F.log_softmax(Tensor(logits), axis=1).data
        probs = F.softmax(Tensor(logits), axis=1).data
        np.testing.assert_allclose(np.exp(log_probs), probs, atol=1e-9)


class TestConvolutionProperties:
    @given(
        arrays(
            dtype=np.float64,
            shape=st.tuples(
                st.integers(1, 2), st.integers(1, 2), st.integers(4, 6), st.integers(4, 6)
            ),
            elements=finite_floats,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_conv_linearity_in_input(self, images):
        rng = np.random.default_rng(0)
        w = Tensor(rng.standard_normal((2, images.shape[1], 3, 3)))
        single = F.conv2d(Tensor(images), w, padding=1).data
        doubled = F.conv2d(Tensor(2.0 * images), w, padding=1).data
        np.testing.assert_allclose(doubled, 2.0 * single, atol=1e-9)

    @given(
        arrays(
            dtype=np.float64,
            shape=st.tuples(
                st.integers(1, 2), st.integers(1, 2), st.integers(4, 6), st.integers(4, 6)
            ),
            elements=finite_floats,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_global_avg_pool_matches_mean(self, images):
        pooled = F.global_avg_pool2d(Tensor(images)).data
        np.testing.assert_allclose(pooled, images.mean(axis=(2, 3)), atol=1e-12)

    @given(
        arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(1, 2), st.integers(1, 2), st.just(4), st.just(4)),
            elements=finite_floats,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_max_pool_dominates_avg_pool(self, images):
        max_pooled = F.max_pool2d(Tensor(images), 2).data
        avg_pooled = F.avg_pool2d(Tensor(images), 2).data
        assert np.all(max_pooled >= avg_pooled - 1e-12)
