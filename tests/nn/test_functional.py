"""Unit tests for conv/pool/softmax primitives (repro.nn.functional)."""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.tensor import Tensor

from tests.helpers import check_gradient, numerical_gradient

RNG = np.random.default_rng(7)


class TestIm2Col:
    def test_shapes(self):
        images = RNG.random((2, 3, 8, 8))
        cols, (h, w) = F.im2col(images, kernel=3, stride=1, pad=0)
        assert (h, w) == (6, 6)
        assert cols.shape == (2 * 36, 3 * 9)

    def test_stride_and_pad(self):
        images = RNG.random((1, 1, 5, 5))
        cols, (h, w) = F.im2col(images, kernel=3, stride=2, pad=1)
        assert (h, w) == (3, 3)
        assert cols.shape == (9, 9)

    def test_values_match_naive(self):
        images = RNG.random((1, 2, 4, 4))
        cols, _ = F.im2col(images, kernel=2, stride=2, pad=0)
        # First window: channels-major flattening of the top-left 2x2 patch.
        expected = images[0, :, 0:2, 0:2].reshape(-1)
        np.testing.assert_allclose(cols[0], expected)

    def test_kernel_too_large_raises(self):
        with pytest.raises(ValueError):
            F.im2col(RNG.random((1, 1, 2, 2)), kernel=5, stride=1, pad=0)

    def test_col2im_adjoint_of_im2col(self):
        # <im2col(x), y> == <x, col2im(y)> for random y: adjoint property.
        images = RNG.random((2, 2, 5, 5))
        cols, _ = F.im2col(images, kernel=3, stride=1, pad=1)
        y = RNG.random(cols.shape)
        lhs = float((cols * y).sum())
        back = F.col2im(y, images.shape, kernel=3, stride=1, pad=1)
        rhs = float((images * back).sum())
        assert lhs == pytest.approx(rhs, rel=1e-10)


class TestConv2d:
    def test_output_shape(self):
        x = Tensor(RNG.random((2, 3, 8, 8)))
        w = Tensor(RNG.standard_normal((5, 3, 3, 3)))
        out = F.conv2d(x, w, stride=1, padding=1)
        assert out.shape == (2, 5, 8, 8)

    def test_matches_naive_convolution(self):
        x = RNG.random((1, 1, 4, 4))
        w = RNG.standard_normal((1, 1, 3, 3))
        out = F.conv2d(Tensor(x), Tensor(w), stride=1, padding=0).data
        naive = np.zeros((1, 1, 2, 2))
        for i in range(2):
            for j in range(2):
                naive[0, 0, i, j] = (x[0, 0, i : i + 3, j : j + 3] * w[0, 0]).sum()
        np.testing.assert_allclose(out, naive, atol=1e-12)

    def test_input_gradient(self):
        w = Tensor(RNG.standard_normal((2, 3, 3, 3)) * 0.3)
        check_gradient(
            lambda x: F.conv2d(x, w, stride=1, padding=1),
            RNG.random((1, 3, 5, 5)),
        )

    def test_weight_gradient(self):
        x = Tensor(RNG.random((2, 2, 5, 5)))
        w0 = RNG.standard_normal((3, 2, 3, 3)) * 0.3

        w = Tensor(w0.copy(), requires_grad=True)
        (F.conv2d(x, w, stride=2, padding=1) ** 2).sum().backward()

        def scalar(wd):
            return float((F.conv2d(x, Tensor(wd), stride=2, padding=1).data ** 2).sum())

        expected = numerical_gradient(scalar, w0)
        np.testing.assert_allclose(w.grad, expected, atol=1e-5, rtol=1e-4)

    def test_bias_gradient(self):
        x = Tensor(RNG.random((2, 1, 4, 4)))
        w = Tensor(RNG.standard_normal((2, 1, 3, 3)))
        b = Tensor(np.zeros(2), requires_grad=True)
        F.conv2d(x, w, b, padding=1).sum().backward()
        # Each bias unit receives one gradient per output location per sample.
        np.testing.assert_allclose(b.grad, np.full(2, 2 * 16.0))

    def test_channel_mismatch_raises(self):
        with pytest.raises(ValueError):
            F.conv2d(Tensor(RNG.random((1, 2, 4, 4))), Tensor(RNG.random((1, 3, 3, 3))))

    def test_non_square_kernel_raises(self):
        with pytest.raises(ValueError):
            F.conv2d(Tensor(RNG.random((1, 1, 4, 4))), Tensor(RNG.random((1, 1, 2, 3))))

    def test_non_nchw_raises(self):
        with pytest.raises(ValueError):
            F.conv2d(Tensor(RNG.random((4, 4))), Tensor(RNG.random((1, 1, 2, 2))))


class TestPooling:
    def test_max_pool_values(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = F.max_pool2d(Tensor(x), kernel=2).data
        np.testing.assert_allclose(out, [[[[5.0, 7.0], [13.0, 15.0]]]])

    def test_max_pool_gradient(self):
        check_gradient(lambda x: F.max_pool2d(x, 2), RNG.random((2, 2, 4, 4)))

    def test_avg_pool_values(self):
        x = np.ones((1, 1, 4, 4))
        out = F.avg_pool2d(Tensor(x), kernel=2).data
        np.testing.assert_allclose(out, np.ones((1, 1, 2, 2)))

    def test_avg_pool_gradient(self):
        check_gradient(lambda x: F.avg_pool2d(x, 2), RNG.random((1, 3, 6, 6)))

    def test_strided_max_pool(self):
        x = Tensor(RNG.random((1, 1, 5, 5)))
        out = F.max_pool2d(x, kernel=3, stride=2)
        assert out.shape == (1, 1, 2, 2)

    def test_global_avg_pool(self):
        x = RNG.random((2, 3, 4, 4))
        out = F.global_avg_pool2d(Tensor(x)).data
        np.testing.assert_allclose(out, x.mean(axis=(2, 3)))

    def test_global_avg_pool_gradient(self):
        check_gradient(F.global_avg_pool2d, RNG.random((2, 2, 3, 3)))


class TestSoftmaxFamily:
    def test_softmax_sums_to_one(self):
        logits = Tensor(RNG.standard_normal((5, 7)))
        probs = F.softmax(logits).data
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(5), atol=1e-12)
        assert np.all(probs >= 0)

    def test_log_softmax_stability_large_logits(self):
        logits = Tensor(np.array([[1000.0, 1000.0, -1000.0]]))
        out = F.log_softmax(logits).data
        assert np.all(np.isfinite(out))

    def test_softmax_gradient(self):
        check_gradient(lambda x: F.softmax(x, axis=1) ** 2, RNG.standard_normal((3, 4)))

    def test_softmax_shift_invariance(self):
        logits = RNG.standard_normal((2, 5))
        a = F.softmax(Tensor(logits)).data
        b = F.softmax(Tensor(logits + 100.0)).data
        np.testing.assert_allclose(a, b, atol=1e-10)

    def test_one_hot(self):
        out = F.one_hot(np.array([0, 2, 1]), 3)
        np.testing.assert_allclose(out, np.eye(3)[[0, 2, 1]])

    def test_one_hot_out_of_range_raises(self):
        with pytest.raises(ValueError):
            F.one_hot(np.array([3]), 3)

    def test_one_hot_requires_vector(self):
        with pytest.raises(ValueError):
            F.one_hot(np.zeros((2, 2), dtype=int), 3)
