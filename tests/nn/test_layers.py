"""Unit tests for Module/layer abstractions (repro.nn.layers)."""

import numpy as np
import pytest

from repro.nn import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    Linear,
    MaxPool2d,
    Module,
    Parameter,
    ReLU,
    Sequential,
    Tensor,
)

RNG = np.random.default_rng(11)


class TestModuleDiscovery:
    def test_named_parameters_nested(self):
        model = Sequential(Linear(4, 8), ReLU(), Linear(8, 2))
        names = [name for name, _ in model.named_parameters()]
        assert "layers.0.weight" in names
        assert "layers.2.bias" in names
        assert len(names) == 4

    def test_parameters_are_parameters(self):
        model = Linear(3, 2)
        assert all(isinstance(p, Parameter) for p in model.parameters())
        assert all(p.requires_grad for p in model.parameters())

    def test_train_eval_propagates(self):
        model = Sequential(Linear(2, 2), Dropout(0.5), BatchNorm2d(2))
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_zero_grad_clears_all(self):
        model = Linear(3, 2)
        out = model(Tensor(RNG.random((4, 3))))
        out.sum().backward()
        assert model.weight.grad is not None
        model.zero_grad()
        assert model.weight.grad is None
        assert model.bias.grad is None

    def test_state_dict_roundtrip(self):
        model = Sequential(Linear(3, 4), Linear(4, 2))
        state = model.state_dict()
        clone = Sequential(Linear(3, 4), Linear(4, 2))
        clone.load_state_dict(state)
        x = Tensor(RNG.random((2, 3)))
        np.testing.assert_allclose(model(x).data, clone(x).data)

    def test_load_state_dict_shape_mismatch_raises(self):
        model = Linear(3, 2)
        bad = {name: np.zeros((1, 1)) for name, _ in model.named_parameters()}
        with pytest.raises(ValueError):
            model.load_state_dict(bad)

    def test_load_state_dict_unknown_key_raises(self):
        model = Linear(3, 2)
        with pytest.raises(KeyError):
            model.load_state_dict({"nope": np.zeros(2)})

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module()(Tensor(np.ones(2)))


class TestLinear:
    def test_output_shape(self):
        layer = Linear(5, 3, rng=RNG)
        assert layer(Tensor(RNG.random((7, 5)))).shape == (7, 3)

    def test_no_bias(self):
        layer = Linear(5, 3, bias=False, rng=RNG)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_linear_matches_manual(self):
        layer = Linear(4, 2, rng=RNG)
        x = RNG.random((3, 4))
        np.testing.assert_allclose(
            layer(Tensor(x)).data, x @ layer.weight.data.T + layer.bias.data
        )


class TestConvLayer:
    def test_shapes_and_params(self):
        layer = Conv2d(3, 8, kernel_size=3, stride=2, padding=1, rng=RNG)
        out = layer(Tensor(RNG.random((2, 3, 8, 8))))
        assert out.shape == (2, 8, 4, 4)
        assert len(layer.parameters()) == 2

    def test_no_bias(self):
        layer = Conv2d(1, 1, 3, bias=False, rng=RNG)
        assert layer.bias is None


class TestBatchNorm:
    def test_train_normalises_batch(self):
        bn = BatchNorm2d(3)
        x = Tensor(RNG.random((8, 3, 4, 4)) * 5 + 2)
        out = bn(x).data
        np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), np.zeros(3), atol=1e-7)
        np.testing.assert_allclose(out.std(axis=(0, 2, 3)), np.ones(3), atol=1e-3)

    def test_running_stats_update(self):
        bn = BatchNorm2d(2, momentum=0.5)
        x = Tensor(np.ones((4, 2, 2, 2)) * 3.0)
        bn(x)
        np.testing.assert_allclose(bn.running_mean, [1.5, 1.5])

    def test_eval_uses_running_stats(self):
        bn = BatchNorm2d(1, momentum=1.0)
        bn(Tensor(RNG.random((8, 1, 3, 3))))  # one training pass fixes stats
        bn.eval()
        x = Tensor(RNG.random((2, 1, 3, 3)))
        manual = (x.data - bn.running_mean) / np.sqrt(bn.running_var + bn.eps)
        np.testing.assert_allclose(bn(x).data, manual, atol=1e-10)

    def test_eval_is_deterministic_per_sample(self):
        bn = BatchNorm2d(1)
        bn(Tensor(RNG.random((8, 1, 3, 3))))
        bn.eval()
        single = Tensor(RNG.random((1, 1, 3, 3)))
        batch = Tensor(np.concatenate([single.data, RNG.random((3, 1, 3, 3))]))
        np.testing.assert_allclose(bn(single).data, bn(batch).data[:1], atol=1e-12)

    def test_requires_nchw(self):
        with pytest.raises(ValueError):
            BatchNorm2d(3)(Tensor(RNG.random((2, 3))))

    def test_buffers_in_state_dict(self):
        bn = BatchNorm2d(2)
        state = bn.state_dict()
        assert "running_mean" in state
        assert "running_var" in state
        clone = BatchNorm2d(2)
        bn(Tensor(RNG.random((4, 2, 2, 2))))
        clone.load_state_dict(bn.state_dict())
        np.testing.assert_allclose(clone.running_mean, bn.running_mean)


class TestDropout:
    def test_eval_is_identity(self):
        layer = Dropout(0.5, rng=RNG)
        layer.eval()
        x = Tensor(RNG.random((4, 4)))
        np.testing.assert_allclose(layer(x).data, x.data)

    def test_train_zeroes_and_scales(self):
        layer = Dropout(0.5, rng=np.random.default_rng(0))
        x = Tensor(np.ones((100, 100)))
        out = layer(x).data
        kept = out[out > 0]
        np.testing.assert_allclose(kept, 2.0)
        assert 0.4 < (out > 0).mean() < 0.6

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            Dropout(1.0)

    def test_zero_probability_identity(self):
        layer = Dropout(0.0)
        x = Tensor(RNG.random((3, 3)))
        np.testing.assert_allclose(layer(x).data, x.data)


class TestPoolAndShapeLayers:
    def test_max_pool_layer(self):
        assert MaxPool2d(2)(Tensor(RNG.random((1, 1, 4, 4)))).shape == (1, 1, 2, 2)

    def test_avg_pool_layer(self):
        assert AvgPool2d(2)(Tensor(RNG.random((1, 1, 4, 4)))).shape == (1, 1, 2, 2)

    def test_global_avg_pool_layer(self):
        assert GlobalAvgPool2d()(Tensor(RNG.random((2, 5, 4, 4)))).shape == (2, 5)

    def test_flatten(self):
        assert Flatten()(Tensor(RNG.random((2, 3, 4, 4)))).shape == (2, 48)


class TestSequential:
    def test_applies_in_order(self):
        model = Sequential(Linear(4, 8, rng=RNG), ReLU(), Linear(8, 2, rng=RNG))
        out = model(Tensor(RNG.random((3, 4))))
        assert out.shape == (3, 2)

    def test_len_iter_getitem(self):
        model = Sequential(ReLU(), ReLU())
        assert len(model) == 2
        assert isinstance(model[0], ReLU)
        assert len(list(iter(model))) == 2

    def test_gradients_flow_end_to_end(self):
        model = Sequential(Linear(4, 8, rng=RNG), ReLU(), Linear(8, 2, rng=RNG))
        out = model(Tensor(RNG.random((3, 4))))
        (out ** 2).sum().backward()
        assert all(p.grad is not None for p in model.parameters())
