"""Equivalence tests for the fast attack-grid engine.

Every optimization in the perf pass (float32 compute policy, eval-time
conv+BN folding, im2col workspace reuse, frozen-parameter attack
backward) must be a pure speedup.  These tests pin the optimized paths
against the unoptimized ones so a future change cannot silently trade
correctness for throughput.
"""

import numpy as np

from repro.nn import (
    SGD,
    Tensor,
    TinyResNet,
    compute_dtype,
    conv_bn_folding,
    cross_entropy,
    frozen_parameters,
    no_grad,
    parameter_freezing,
    workspace_reuse,
)
from repro.nn import functional as F
from repro.nn.functional import Im2colWorkspace

RNG = np.random.default_rng(11)


def make_model(seed: int = 0) -> TinyResNet:
    model = TinyResNet(num_classes=4, widths=(8, 16), blocks_per_stage=(1, 1), seed=seed)
    # One train-mode pass gives the BN layers non-trivial running
    # statistics, so folding has something real to fold.
    model.train()
    model(Tensor(RNG.random((8, 3, 12, 12)).astype(np.float32)))
    model.eval()
    return model


def eval_forward(model: TinyResNet, images: np.ndarray) -> np.ndarray:
    """Inference forward, mirroring predict_proba (no_grad → cached fold)."""
    with no_grad():
        return model(Tensor(images)).data.copy()


class TestConvBnFolding:
    def test_folded_matches_unfolded(self):
        model = make_model()
        images = RNG.random((4, 3, 12, 12)).astype(np.float32)
        with conv_bn_folding(True):
            folded = eval_forward(model, images)
        with conv_bn_folding(False):
            unfolded = eval_forward(model, images)
        np.testing.assert_allclose(folded, unfolded, atol=1e-5)

    def test_fold_cache_invalidated_by_mode_flip(self):
        # Optimizer steps mutate parameter arrays in place while the model
        # is in train mode; returning to eval must re-fold.
        model = make_model()
        images = RNG.random((2, 3, 12, 12)).astype(np.float32)
        with conv_bn_folding(True):
            before = eval_forward(model, images)
            model.train()
            model.stem_conv.weight.data *= 1.5
            model.eval()
            after = eval_forward(model, images)
            with conv_bn_folding(False):
                reference = eval_forward(model, images)
        assert not np.allclose(before, after)
        np.testing.assert_allclose(after, reference, atol=1e-5)

    def test_fold_cache_invalidated_by_stat_rebind(self):
        # BN recalibration rebinds the running-stat arrays without any
        # mode flip; the identity-keyed cache must notice.
        model = make_model()
        images = RNG.random((2, 3, 12, 12)).astype(np.float32)
        with conv_bn_folding(True):
            before = eval_forward(model, images)
            model.stem_bn.running_mean = model.stem_bn.running_mean + 0.25
            after = eval_forward(model, images)
            with conv_bn_folding(False):
                reference = eval_forward(model, images)
        assert not np.allclose(before, after)
        np.testing.assert_allclose(after, reference, atol=1e-5)


class TestDtypePolicy:
    def test_float32_and_float64_predictions_agree(self):
        model = make_model()
        images = RNG.random((32, 3, 12, 12)).astype(np.float32)
        labels = np.arange(32, dtype=np.int64) % 4
        optimizer = SGD(model.parameters(), lr=0.05)
        model.train()
        for _ in range(5):
            model.zero_grad()
            cross_entropy(model(Tensor(images)), labels).backward()
            optimizer.step()
        model.eval()

        predictions32 = model.predict(images)
        probabilities32 = model.predict_proba(images)
        model.to_dtype(np.float64)
        try:
            with compute_dtype(np.float64):
                predictions64 = model.predict(images.astype(np.float64))
                probabilities64 = model.predict_proba(images.astype(np.float64))
        finally:
            model.to_dtype(np.float32)

        np.testing.assert_array_equal(predictions32, predictions64)
        np.testing.assert_allclose(probabilities32, probabilities64, atol=1e-5)


class TestWorkspaceReuse:
    def test_conv_output_bit_identical(self):
        x = Tensor(RNG.random((2, 3, 10, 10)).astype(np.float32))
        weight = Tensor(RNG.random((4, 3, 3, 3)).astype(np.float32) - 0.5)
        bias = Tensor(RNG.random(4).astype(np.float32))

        fresh = F.conv2d(x, weight, bias, stride=1, padding=1).data
        workspace = Im2colWorkspace()
        first = F.conv2d(x, weight, bias, stride=1, padding=1, workspace=workspace).data
        second = F.conv2d(x, weight, bias, stride=1, padding=1, workspace=workspace).data

        np.testing.assert_array_equal(fresh, first)
        np.testing.assert_array_equal(fresh, second)
        assert workspace.hits >= 1

    def test_workspace_reuse_toggle(self):
        workspace = Im2colWorkspace()
        with workspace_reuse(False):
            assert workspace.acquire((4, 6), np.dtype(np.float32)) is None
        buffer = workspace.acquire((4, 6), np.dtype(np.float32))
        assert buffer is not None and buffer.shape == (4, 6)
        workspace.release()


class TestFrozenParameters:
    def test_input_gradient_identical_and_param_grads_untouched(self):
        model = make_model()
        images = RNG.random((2, 3, 12, 12)).astype(np.float32)
        labels = np.zeros(2, dtype=np.int64)

        x_unfrozen = Tensor(images, requires_grad=True)
        cross_entropy(model(x_unfrozen), labels).backward()
        assert any(p.grad is not None for p in model.parameters())
        model.zero_grad()

        x_frozen = Tensor(images, requires_grad=True)
        with frozen_parameters(model):
            cross_entropy(model(x_frozen), labels).backward()

        np.testing.assert_array_equal(x_frozen.grad, x_unfrozen.grad)
        assert all(p.grad is None for p in model.parameters())
        assert all(p.requires_grad for p in model.parameters())

    def test_freezing_toggle_restores_seed_behaviour(self):
        model = make_model()
        with parameter_freezing(False):
            with frozen_parameters(model):
                assert all(p.requires_grad for p in model.parameters())
        with frozen_parameters(model):
            assert not any(p.requires_grad for p in model.parameters())
        assert all(p.requires_grad for p in model.parameters())
