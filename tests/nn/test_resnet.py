"""Unit tests for TinyResNet and serialization."""

import os

import numpy as np
import pytest

from repro.nn import Tensor, TinyResNet, cross_entropy, load_state, save_state
from repro.nn.resnet import ResidualBlock
from repro.nn.serialization import state_allclose

RNG = np.random.default_rng(5)


def tiny_net(num_classes=4, seed=0):
    return TinyResNet(
        num_classes=num_classes, widths=(8, 16), blocks_per_stage=(1, 1), seed=seed
    )


class TestResidualBlock:
    def test_identity_shortcut_shape(self):
        block = ResidualBlock(8, 8, stride=1, rng=RNG)
        assert block.shortcut_conv is None
        out = block(Tensor(RNG.random((2, 8, 6, 6))))
        assert out.shape == (2, 8, 6, 6)

    def test_projection_shortcut_on_downsample(self):
        block = ResidualBlock(8, 16, stride=2, rng=RNG)
        assert block.shortcut_conv is not None
        out = block(Tensor(RNG.random((2, 8, 6, 6))))
        assert out.shape == (2, 16, 3, 3)

    def test_gradients_flow_through_shortcut(self):
        block = ResidualBlock(4, 4, rng=RNG)
        x = Tensor(RNG.random((1, 4, 5, 5)), requires_grad=True)
        block(x).sum().backward()
        assert x.grad is not None
        assert np.abs(x.grad).sum() > 0


class TestTinyResNet:
    def test_logit_shape(self):
        net = tiny_net()
        out = net(Tensor(RNG.random((3, 3, 16, 16))))
        assert out.shape == (3, 4)

    def test_feature_shape_matches_feature_dim(self):
        net = tiny_net()
        feats = net.features(Tensor(RNG.random((2, 3, 16, 16))))
        assert feats.shape == (2, net.feature_dim)
        assert net.feature_dim == 16

    def test_forward_with_features_consistent(self):
        net = tiny_net().eval()
        x = Tensor(RNG.random((2, 3, 16, 16)))
        logits, feats = net.forward_with_features(x)
        np.testing.assert_allclose(logits.data, net.fc(feats).data)
        np.testing.assert_allclose(feats.data, net.features(x).data, atol=1e-12)

    def test_same_seed_same_weights(self):
        a, b = tiny_net(seed=3), tiny_net(seed=3)
        assert state_allclose(a.state_dict(), b.state_dict())

    def test_different_seed_different_weights(self):
        assert not state_allclose(tiny_net(seed=1).state_dict(), tiny_net(seed=2).state_dict())

    def test_input_gradient_available_for_attacks(self):
        net = tiny_net().eval()
        x = Tensor(RNG.random((2, 3, 16, 16)), requires_grad=True)
        loss = cross_entropy(net(x), np.array([0, 1]))
        loss.backward()
        assert x.grad is not None
        assert np.all(np.isfinite(x.grad))

    def test_predict_proba_rows_sum_to_one(self):
        net = tiny_net()
        probs = net.predict_proba(RNG.random((5, 3, 16, 16)))
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(5), atol=1e-6)

    def test_predict_returns_class_indices(self):
        net = tiny_net()
        preds = net.predict(RNG.random((5, 3, 16, 16)))
        assert preds.shape == (5,)
        assert np.all((preds >= 0) & (preds < 4))

    def test_predict_restores_training_mode(self):
        net = tiny_net().train()
        net.predict(RNG.random((2, 3, 16, 16)))
        assert net.training

    def test_extract_features_batching_consistent(self):
        net = tiny_net().eval()
        images = RNG.random((7, 3, 16, 16))
        full = net.extract_features(images, batch_size=7)
        chunked = net.extract_features(images, batch_size=2)
        np.testing.assert_allclose(full, chunked, atol=1e-5)

    def test_empty_batch(self):
        net = tiny_net()
        assert net.predict_proba(np.zeros((0, 3, 16, 16))).shape == (0, 4)
        assert net.extract_features(np.zeros((0, 3, 16, 16))).shape == (0, 16)

    def test_validation(self):
        with pytest.raises(ValueError):
            TinyResNet(num_classes=1)
        with pytest.raises(ValueError):
            TinyResNet(num_classes=3, widths=(8,), blocks_per_stage=(1, 1))
        net = tiny_net()
        with pytest.raises(ValueError):
            net.features(Tensor(RNG.random((3, 16, 16))))

    def test_training_reduces_loss(self):
        from repro.nn import SGD

        net = tiny_net(num_classes=2)
        x = RNG.random((16, 3, 8, 8))
        # Make the two classes trivially separable by brightness.
        labels = np.array([0] * 8 + [1] * 8)
        x[8:] += 1.5
        opt = SGD(net.parameters(), lr=0.05, momentum=0.9)
        losses = []
        for _ in range(15):
            opt.zero_grad()
            loss = cross_entropy(net(Tensor(x)), labels)
            loss.backward()
            opt.step()
            losses.append(loss.item())
        assert losses[-1] < losses[0] * 0.5


class TestSerialization:
    def test_save_load_roundtrip(self, tmp_path):
        net = tiny_net(seed=9)
        path = os.path.join(tmp_path, "model.npz")
        save_state(net, path)
        clone = tiny_net(seed=1)
        load_state(clone, path)
        x = RNG.random((2, 3, 16, 16))
        np.testing.assert_allclose(
            clone.eval()(Tensor(x)).data, net.eval()(Tensor(x)).data, atol=1e-12
        )

    def test_load_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_state(tiny_net(), os.path.join(tmp_path, "missing.npz"))

    def test_running_stats_survive_roundtrip(self, tmp_path):
        net = tiny_net()
        net(Tensor(RNG.random((4, 3, 16, 16))))  # update BN stats
        path = os.path.join(tmp_path, "model.npz")
        save_state(net, path)
        clone = tiny_net(seed=2)
        load_state(clone, path)
        np.testing.assert_allclose(clone.stem_bn.running_mean, net.stem_bn.running_mean)

    def test_state_allclose_detects_difference(self):
        a = tiny_net(seed=1).state_dict()
        b = tiny_net(seed=1).state_dict()
        assert state_allclose(a, b)
        key = next(iter(b))
        b[key] = b[key] + 1.0
        assert not state_allclose(a, b)
        del b[key]
        assert not state_allclose(a, b)
