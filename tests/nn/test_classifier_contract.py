"""Contract tests run against every ImageClassifier implementation.

Any architecture plugged into the TAaMR pipeline must honour the same
API invariants; these tests are parametrised over all shipped
architectures so future ones get the contract for free.
"""

import numpy as np
import pytest

from repro.nn import SimpleCNN, Tensor, TinyResNet, cross_entropy

RNG = np.random.default_rng(21)

ARCHITECTURES = {
    "tiny_resnet": lambda: TinyResNet(
        num_classes=4, widths=(8, 16), blocks_per_stage=(1, 1), seed=0
    ),
    "simple_cnn": lambda: SimpleCNN(
        num_classes=4, widths=(8, 16), convs_per_stage=1, seed=0
    ),
}


@pytest.fixture(params=sorted(ARCHITECTURES), ids=sorted(ARCHITECTURES))
def model(request):
    return ARCHITECTURES[request.param]()


class TestClassifierContract:
    def test_logits_shape(self, model):
        out = model(Tensor(RNG.random((3, 3, 16, 16))))
        assert out.shape == (3, model.num_classes)

    def test_features_shape_matches_feature_dim(self, model):
        feats = model.features(Tensor(RNG.random((2, 3, 16, 16))))
        assert feats.shape == (2, model.feature_dim)

    def test_forward_with_features_consistency(self, model):
        model.eval()
        x = Tensor(RNG.random((2, 3, 16, 16)))
        logits, feats = model.forward_with_features(x)
        np.testing.assert_allclose(logits.data, model.fc(feats).data, atol=1e-12)

    def test_predict_proba_distribution(self, model):
        # Tolerance covers the float32 compute policy (eps ≈ 1.2e-7).
        probs = model.predict_proba(RNG.random((4, 3, 16, 16)))
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(4), atol=1e-6)
        assert np.all(probs >= 0)

    def test_predict_matches_argmax(self, model):
        images = RNG.random((4, 3, 16, 16))
        np.testing.assert_array_equal(
            model.predict(images), model.predict_proba(images).argmax(axis=1)
        )

    def test_batching_invariance(self, model):
        model.eval()
        images = RNG.random((5, 3, 16, 16))
        np.testing.assert_allclose(
            model.extract_features(images, batch_size=5),
            model.extract_features(images, batch_size=2),
            atol=1e-5,
        )

    def test_empty_batch(self, model):
        assert model.predict_proba(np.zeros((0, 3, 16, 16))).shape == (
            0,
            model.num_classes,
        )
        assert model.extract_features(np.zeros((0, 3, 16, 16))).shape == (
            0,
            model.feature_dim,
        )

    def test_eval_mode_restored_after_convenience_calls(self, model):
        model.train()
        model.predict(RNG.random((2, 3, 16, 16)))
        assert model.training
        model.eval()
        model.predict(RNG.random((2, 3, 16, 16)))
        assert not model.training

    def test_input_gradients_for_attacks(self, model):
        model.eval()
        x = Tensor(RNG.random((2, 3, 16, 16)), requires_grad=True)
        cross_entropy(model(x), np.array([0, 1])).backward()
        assert x.grad is not None
        assert np.isfinite(x.grad).all()
        assert np.abs(x.grad).sum() > 0

    def test_rejects_non_nchw(self, model):
        with pytest.raises(ValueError):
            model.features(Tensor(RNG.random((3, 16, 16))))

    def test_state_roundtrip_preserves_predictions(self, model, tmp_path):
        import os

        from repro.nn import load_state, save_state

        path = os.path.join(tmp_path, "weights.npz")
        save_state(model, path)
        clone = ARCHITECTURES[
            "tiny_resnet" if isinstance(model, TinyResNet) else "simple_cnn"
        ]()
        load_state(clone, path)
        images = RNG.random((3, 3, 16, 16))
        np.testing.assert_allclose(
            clone.predict_proba(images), model.predict_proba(images), atol=1e-12
        )
