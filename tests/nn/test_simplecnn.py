"""Unit tests for SimpleCNN and the shared ImageClassifier contract."""

import numpy as np
import pytest

from repro.nn import SimpleCNN, Tensor, TinyResNet, cross_entropy
from repro.nn.classifier import ImageClassifier

RNG = np.random.default_rng(13)


def tiny_cnn(num_classes=4, seed=0):
    return SimpleCNN(num_classes=num_classes, widths=(8, 16), convs_per_stage=1, seed=seed)


class TestSimpleCNN:
    def test_logit_shape(self):
        net = tiny_cnn()
        out = net(Tensor(RNG.random((3, 3, 16, 16))))
        assert out.shape == (3, 4)

    def test_feature_dim_is_last_width(self):
        net = tiny_cnn()
        feats = net.features(Tensor(RNG.random((2, 3, 16, 16))))
        assert feats.shape == (2, 16)
        assert net.feature_dim == 16

    def test_downsampling_between_stages(self):
        net = tiny_cnn()
        trunk = net._trunk(Tensor(RNG.random((1, 3, 16, 16))))
        # one max-pool between two stages: 16 -> 8
        assert trunk.shape[-1] == 8

    def test_input_gradient_available(self):
        net = tiny_cnn().eval()
        x = Tensor(RNG.random((2, 3, 16, 16)), requires_grad=True)
        cross_entropy(net(x), np.array([0, 1])).backward()
        assert x.grad is not None
        assert np.isfinite(x.grad).all()

    def test_is_image_classifier(self):
        assert isinstance(tiny_cnn(), ImageClassifier)
        assert isinstance(TinyResNet(num_classes=3, widths=(8,), blocks_per_stage=(1,)), ImageClassifier)

    def test_same_seed_same_weights(self):
        a, b = tiny_cnn(seed=5), tiny_cnn(seed=5)
        x = RNG.random((2, 3, 16, 16))
        np.testing.assert_allclose(
            a.eval()(Tensor(x)).data, b.eval()(Tensor(x)).data
        )

    def test_state_dict_roundtrip(self):
        net = tiny_cnn(seed=1)
        clone = tiny_cnn(seed=2)
        clone.load_state_dict(net.state_dict())
        x = RNG.random((2, 3, 16, 16))
        np.testing.assert_allclose(
            clone.eval()(Tensor(x)).data, net.eval()(Tensor(x)).data, atol=1e-12
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            SimpleCNN(num_classes=1)
        with pytest.raises(ValueError):
            SimpleCNN(num_classes=3, convs_per_stage=0)
        with pytest.raises(ValueError):
            SimpleCNN(num_classes=3, widths=())
        with pytest.raises(ValueError):
            tiny_cnn().features(Tensor(RNG.random((3, 16, 16))))

    def test_trainable_on_separable_data(self):
        from repro.nn import SGD

        net = tiny_cnn(num_classes=2)
        x = RNG.random((12, 3, 8, 8))
        labels = np.array([0] * 6 + [1] * 6)
        x[6:] += 1.2
        opt = SGD(net.parameters(), lr=0.05, momentum=0.9)
        losses = []
        for _ in range(12):
            opt.zero_grad()
            loss = cross_entropy(net(Tensor(x)), labels)
            loss.backward()
            opt.step()
            losses.append(loss.item())
        assert losses[-1] < losses[0] * 0.6

    def test_predict_api_contract(self):
        """SimpleCNN honours the full ImageClassifier convenience API."""
        net = tiny_cnn()
        images = RNG.random((5, 3, 16, 16))
        probs = net.predict_proba(images)
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(5), atol=1e-6)
        preds = net.predict(images)
        np.testing.assert_array_equal(preds, probs.argmax(axis=1))
        feats = net.extract_features(images, batch_size=2)
        assert feats.shape == (5, net.feature_dim)

    def test_attackable_with_fgsm(self):
        """The attack stack accepts any ImageClassifier."""
        from repro.attacks import FGSM

        net = tiny_cnn()
        images = RNG.random((3, 3, 16, 16))
        result = FGSM(net, epsilon=0.05).attack(np.clip(images, 0, 1), target_class=1)
        assert result.num_images == 3
