"""Unit tests for PSNR, SSIM and PSM (Table IV metrics)."""

import numpy as np
import pytest

from repro.metrics import (
    PerceptualSimilarity,
    batch_psnr,
    batch_ssim,
    mse,
    psm_from_features,
    psnr,
    ssim,
)
from repro.nn import TinyResNet

RNG = np.random.default_rng(9)


class TestMSEPSNR:
    def test_mse_zero_for_identical(self):
        x = RNG.random((3, 8, 8))
        assert mse(x, x) == 0.0

    def test_mse_known_value(self):
        a = np.zeros((2, 2))
        b = np.full((2, 2), 0.5)
        assert mse(a, b) == pytest.approx(0.25)

    def test_psnr_infinite_for_identical(self):
        x = RNG.random((3, 4, 4))
        assert psnr(x, x) == float("inf")

    def test_psnr_known_value(self):
        a = np.zeros((2, 2))
        b = np.full((2, 2), 0.1)  # MSE = 0.01 -> PSNR = 20 dB
        assert psnr(a, b) == pytest.approx(20.0)

    def test_psnr_scale_invariance(self):
        """255-scale and 1-scale images give identical dB values."""
        a = RNG.random((3, 6, 6))
        b = np.clip(a + RNG.normal(0, 0.02, a.shape), 0, 1)
        db_unit = psnr(a, b, peak=1.0)
        db_255 = psnr(a * 255, b * 255, peak=255.0)
        assert db_unit == pytest.approx(db_255)

    def test_psnr_decreases_with_noise(self):
        x = RNG.random((3, 8, 8))
        small = np.clip(x + RNG.normal(0, 0.01, x.shape), 0, 1)
        large = np.clip(x + RNG.normal(0, 0.1, x.shape), 0, 1)
        assert psnr(x, small) > psnr(x, large)

    def test_batch_psnr_matches_single(self):
        x = RNG.random((4, 3, 8, 8))
        y = np.clip(x + RNG.normal(0, 0.05, x.shape), 0, 1)
        batch = batch_psnr(x, y)
        singles = [psnr(x[i], y[i]) for i in range(4)]
        np.testing.assert_allclose(batch, singles)

    def test_typical_attack_range(self):
        """ε = 8/255 perturbations should land in the paper's 20-50 dB band."""
        x = RNG.random((3, 16, 16))
        y = np.clip(x + RNG.choice([-1, 1], x.shape) * (8 / 255), 0, 1)
        assert 20 < psnr(x, y) < 50

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            mse(np.zeros((2, 2)), np.zeros((3, 3)))
        with pytest.raises(ValueError):
            batch_psnr(np.zeros((1, 3, 4, 4)), np.zeros((2, 3, 4, 4)))

    def test_invalid_peak(self):
        with pytest.raises(ValueError):
            psnr(np.zeros((2, 2)), np.ones((2, 2)), peak=0.0)


class TestSSIM:
    def test_identical_images_score_one(self):
        x = RNG.random((3, 16, 16))
        assert ssim(x, x) == pytest.approx(1.0)

    def test_range_bounded(self):
        x = RNG.random((3, 16, 16))
        y = RNG.random((3, 16, 16))
        value = ssim(x, y)
        assert -1.0 <= value <= 1.0

    def test_decreases_with_noise(self):
        x = RNG.random((3, 16, 16))
        small = np.clip(x + RNG.normal(0, 0.01, x.shape), 0, 1)
        large = np.clip(x + RNG.normal(0, 0.2, x.shape), 0, 1)
        assert ssim(x, small) > ssim(x, large)

    def test_constant_shift_keeps_structure(self):
        """SSIM is structure-sensitive: a small uniform shift barely hurts."""
        x = RNG.random((1, 16, 16)) * 0.5 + 0.25
        shifted = x + 0.02
        noisy = np.clip(x + RNG.normal(0, 0.02, x.shape), 0, 1)
        assert ssim(x, shifted) > ssim(x, noisy)

    def test_accepts_hw_images(self):
        x = RNG.random((12, 12))
        assert ssim(x, x) == pytest.approx(1.0)

    def test_small_attack_stays_near_one(self):
        x = RNG.random((3, 16, 16))
        y = np.clip(x + RNG.choice([-1, 1], x.shape) * (4 / 255), 0, 1)
        assert ssim(x, y) > 0.9

    def test_window_validation(self):
        x = RNG.random((3, 8, 8))
        with pytest.raises(ValueError):
            ssim(x, x, window=1)
        with pytest.raises(ValueError):
            ssim(x, x, window=10)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            ssim(np.zeros((3, 8, 8)), np.zeros((3, 9, 9)))

    def test_batch_ssim(self):
        x = RNG.random((3, 3, 12, 12))
        values = batch_ssim(x, x)
        np.testing.assert_allclose(values, np.ones(3), atol=1e-10)


class TestPSM:
    def test_from_features_zero_for_identical(self):
        feats = RNG.random((5, 8))
        np.testing.assert_allclose(psm_from_features(feats, feats), np.zeros(5))

    def test_from_features_normalised_by_dim(self):
        a = np.zeros((1, 4))
        b = np.ones((1, 4))
        assert psm_from_features(a, b)[0] == pytest.approx(1.0)  # 4/4

    def test_from_features_validation(self):
        with pytest.raises(ValueError):
            psm_from_features(np.zeros((2, 3)), np.zeros((3, 2)))
        with pytest.raises(ValueError):
            psm_from_features(np.zeros(3), np.zeros(3))

    def test_model_based_psm(self):
        model = TinyResNet(num_classes=3, widths=(4, 8), blocks_per_stage=(1, 1), seed=0)
        metric = PerceptualSimilarity(model)
        x = RNG.random((2, 3, 16, 16))
        np.testing.assert_allclose(metric(x, x), np.zeros(2), atol=1e-12)
        y = np.clip(x + RNG.normal(0, 0.3, x.shape), 0, 1)
        assert metric(x, y).min() > 0

    def test_single_pair(self):
        model = TinyResNet(num_classes=3, widths=(4,), blocks_per_stage=(1,), seed=0)
        metric = PerceptualSimilarity(model)
        x = RNG.random((3, 16, 16))
        assert metric.single(x, x) == pytest.approx(0.0, abs=1e-12)

    def test_batch_shape_validation(self):
        model = TinyResNet(num_classes=3, widths=(4,), blocks_per_stage=(1,), seed=0)
        metric = PerceptualSimilarity(model)
        with pytest.raises(ValueError):
            metric(np.zeros((1, 3, 8, 8)), np.zeros((2, 3, 8, 8)))
        with pytest.raises(ValueError):
            metric(np.zeros((3, 8, 8)), np.zeros((3, 8, 8)))
