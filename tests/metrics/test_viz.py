"""Unit tests for the dependency-free image export (repro.viz)."""

import os
import struct
import zlib

import numpy as np
import pytest

from repro.viz import image_grid, save_attack_comparison, write_png, write_ppm

RNG = np.random.default_rng(2)


def read_png_pixels(path):
    """Minimal PNG reader for round-trip verification (filter-0 RGB only)."""
    with open(path, "rb") as handle:
        data = handle.read()
    assert data[:8] == b"\x89PNG\r\n\x1a\n"
    offset = 8
    width = height = None
    idat = b""
    while offset < len(data):
        (length,) = struct.unpack(">I", data[offset : offset + 4])
        tag = data[offset + 4 : offset + 8]
        payload = data[offset + 8 : offset + 8 + length]
        if tag == b"IHDR":
            width, height, bit_depth, color_type = struct.unpack(">IIBB", payload[:10])
            assert bit_depth == 8 and color_type == 2
        elif tag == b"IDAT":
            idat += payload
        offset += 12 + length
    raw = zlib.decompress(idat)
    stride = width * 3 + 1
    rows = []
    for row in range(height):
        line = raw[row * stride : (row + 1) * stride]
        assert line[0] == 0  # filter type None
        rows.append(np.frombuffer(line[1:], dtype=np.uint8).reshape(width, 3))
    return np.stack(rows)


class TestPNG:
    def test_roundtrip(self, tmp_path):
        image = RNG.random((3, 9, 7))
        path = os.path.join(tmp_path, "img.png")
        write_png(image, path)
        decoded = read_png_pixels(path)
        expected = (np.clip(image, 0, 1).transpose(1, 2, 0) * 255 + 0.5).astype(np.uint8)
        np.testing.assert_array_equal(decoded, expected)

    def test_grayscale_promoted(self, tmp_path):
        image = RNG.random((1, 5, 5))
        path = os.path.join(tmp_path, "gray.png")
        write_png(image, path)
        decoded = read_png_pixels(path)
        assert decoded.shape == (5, 5, 3)
        np.testing.assert_array_equal(decoded[..., 0], decoded[..., 1])

    def test_out_of_range_clipped(self, tmp_path):
        image = np.full((3, 2, 2), 2.0)
        path = os.path.join(tmp_path, "clip.png")
        write_png(image, path)
        assert read_png_pixels(path).max() == 255

    def test_rejects_bad_shapes(self, tmp_path):
        with pytest.raises(ValueError):
            write_png(np.zeros((4, 5, 5)), os.path.join(tmp_path, "x.png"))
        with pytest.raises(ValueError):
            write_png(np.zeros((5, 5)), os.path.join(tmp_path, "x.png"))


class TestPPM:
    def test_header_and_size(self, tmp_path):
        image = RNG.random((3, 4, 6))
        path = os.path.join(tmp_path, "img.ppm")
        write_ppm(image, path)
        with open(path, "rb") as handle:
            content = handle.read()
        assert content.startswith(b"P6\n6 4\n255\n")
        assert len(content) == len(b"P6\n6 4\n255\n") + 4 * 6 * 3


class TestGrid:
    def test_grid_dimensions(self):
        images = [RNG.random((3, 8, 8)) for _ in range(5)]
        grid = image_grid(images, columns=3, pad=1)
        assert grid.shape == (3, 2 * 8 + 3 * 1, 3 * 8 + 4 * 1)

    def test_grid_places_first_image(self):
        images = [np.zeros((3, 4, 4)), np.ones((3, 4, 4))]
        grid = image_grid(images, columns=2, pad=0)
        np.testing.assert_array_equal(grid[:, :4, :4], images[0])
        np.testing.assert_array_equal(grid[:, :4, 4:8], images[1])

    def test_validation(self):
        with pytest.raises(ValueError):
            image_grid([])
        with pytest.raises(ValueError):
            image_grid([np.zeros((3, 4, 4)), np.zeros((3, 5, 5))])
        with pytest.raises(ValueError):
            image_grid([np.zeros((3, 4, 4))], columns=0)

    def test_save_attack_comparison(self, tmp_path):
        clean = RNG.random((3, 3, 6, 6))
        attacked = np.clip(clean + 0.05, 0, 1)
        path = os.path.join(tmp_path, "cmp.png")
        save_attack_comparison(clean, attacked, path, columns=2)
        assert os.path.exists(path)
        decoded = read_png_pixels(path)
        assert decoded.shape[0] > 6  # grid bigger than one image

    def test_save_attack_comparison_validation(self, tmp_path):
        with pytest.raises(ValueError):
            save_attack_comparison(
                np.zeros((2, 3, 4, 4)),
                np.zeros((3, 3, 4, 4)),
                os.path.join(tmp_path, "x.png"),
            )
