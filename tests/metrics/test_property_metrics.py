"""Property-based tests for the visual quality metrics."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.metrics import mse, psm_from_features, psnr, ssim

pixel_floats = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
image_pairs_shape = st.tuples(st.integers(1, 3), st.integers(8, 14), st.integers(8, 14))


@st.composite
def image_pair(draw):
    shape = draw(image_pairs_shape)
    x = draw(arrays(dtype=np.float64, shape=shape, elements=pixel_floats))
    y = draw(arrays(dtype=np.float64, shape=shape, elements=pixel_floats))
    return x, y


class TestMSEPSNRProperties:
    @given(image_pair())
    @settings(max_examples=50, deadline=None)
    def test_mse_symmetry(self, pair):
        x, y = pair
        assert mse(x, y) == mse(y, x)

    @given(image_pair())
    @settings(max_examples=50, deadline=None)
    def test_mse_non_negative(self, pair):
        x, y = pair
        assert mse(x, y) >= 0.0

    @given(image_pair())
    @settings(max_examples=50, deadline=None)
    def test_psnr_symmetry(self, pair):
        x, y = pair
        assert psnr(x, y) == psnr(y, x)

    @given(arrays(dtype=np.float64, shape=image_pairs_shape, elements=pixel_floats))
    @settings(max_examples=50, deadline=None)
    def test_psnr_identity_infinite(self, x):
        assert psnr(x, x) == float("inf")

    @given(image_pair(), st.floats(min_value=0.01, max_value=0.99))
    @settings(max_examples=50, deadline=None)
    def test_psnr_monotone_in_perturbation_scale(self, pair, scale):
        """Shrinking the perturbation can only improve PSNR."""
        x, y = pair
        if np.allclose(x, y):
            return
        closer = x + scale * (y - x)
        assert psnr(x, closer) >= psnr(x, y) - 1e-9


class TestSSIMProperties:
    @given(arrays(dtype=np.float64, shape=image_pairs_shape, elements=pixel_floats))
    @settings(max_examples=40, deadline=None)
    def test_identity_is_one(self, x):
        assert abs(ssim(x, x) - 1.0) < 1e-9

    @given(image_pair())
    @settings(max_examples=40, deadline=None)
    def test_symmetry(self, pair):
        x, y = pair
        assert abs(ssim(x, y) - ssim(y, x)) < 1e-9

    @given(image_pair())
    @settings(max_examples=40, deadline=None)
    def test_bounded(self, pair):
        x, y = pair
        value = ssim(x, y)
        assert -1.0 - 1e-9 <= value <= 1.0 + 1e-9


class TestPSMProperties:
    @given(
        arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(1, 6), st.integers(2, 16)),
            elements=st.floats(min_value=-5, max_value=5, allow_nan=False),
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_identity_zero(self, features):
        np.testing.assert_allclose(psm_from_features(features, features), 0.0)

    @given(
        arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(1, 6), st.integers(2, 16)),
            elements=st.floats(min_value=-5, max_value=5, allow_nan=False),
        ),
        st.floats(min_value=0.1, max_value=3.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_quadratic_scaling(self, features, scale):
        """PSM is a squared distance: scaling the gap scales PSM by scale²."""
        other = features + 1.0
        base = psm_from_features(features, other)
        scaled = psm_from_features(features, features + scale * (other - features))
        np.testing.assert_allclose(scaled, base * scale ** 2, rtol=1e-9)

    @given(
        arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(1, 6), st.integers(2, 16)),
            elements=st.floats(min_value=-5, max_value=5, allow_nan=False),
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_symmetry(self, features):
        other = features[::-1].copy()
        np.testing.assert_allclose(
            psm_from_features(features, other), psm_from_features(other, features)
        )
