"""Unit tests for experiment configs, context caching and runners."""

import numpy as np
import pytest

from repro.core import make_scenario
from repro.experiments import (
    ExperimentConfig,
    build_context,
    clear_context_registry,
    clear_grid_cache,
    format_table1,
    format_table2,
    format_table3,
    format_table4,
    men_config,
    run_attack_grid,
    women_config,
)

TINY = dict(
    scale=0.002,
    image_size=16,
    classifier_epochs=8,
    recommender_epochs=5,
    amr_pretrain_epochs=2,
    cutoff=20,
    epsilons_255=(8.0,),
)


@pytest.fixture(scope="module")
def context():
    clear_context_registry()
    clear_grid_cache()
    return build_context(men_config(**TINY))


class TestConfig:
    def test_cache_key_stable(self):
        assert men_config().cache_key() == men_config().cache_key()

    def test_cache_key_sensitive_to_training_fields(self):
        assert men_config().cache_key() != men_config(scale=0.01).cache_key()
        assert men_config().cache_key() != women_config().cache_key()

    def test_cache_key_ignores_attack_grid(self):
        assert (
            men_config().cache_key()
            == men_config(epsilons_255=(2.0,), pgd_steps=3).cache_key()
        )

    def test_cache_key_ignores_cutoff(self):
        """cutoff only affects evaluation, never training state."""
        assert men_config().cache_key() == men_config(cutoff=33).cache_key()

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentConfig(dataset="movielens")
        with pytest.raises(ValueError):
            ExperimentConfig(scale=0)
        with pytest.raises(ValueError):
            ExperimentConfig(epsilons_255=(0.0,))
        with pytest.raises(ValueError):
            ExperimentConfig(cutoff=0)


class TestContext:
    def test_fields_populated(self, context):
        assert context.dataset.num_items > 0
        assert context.features.shape == (
            context.dataset.num_items,
            context.classifier.feature_dim,
        )
        assert context.vbpr.is_fitted
        assert context.amr.is_fitted

    def test_in_process_cache_returns_same_object(self, context):
        again = build_context(men_config(**TINY))
        assert again is context

    def test_recommender_lookup(self, context):
        assert context.recommender("vbpr") is context.vbpr
        assert context.recommender("AMR") is context.amr
        with pytest.raises(KeyError):
            context.recommender("NCF")

    def test_disk_cache_roundtrip(self, tmp_path):
        clear_context_registry()
        config = men_config(**{**TINY, "seed": 99})
        first = build_context(config, cache_dir=str(tmp_path))
        clear_context_registry()
        second = build_context(config, cache_dir=str(tmp_path))
        assert second is not first
        np.testing.assert_allclose(
            second.vbpr.score_all(), first.vbpr.score_all(), atol=1e-12
        )
        preds_first = first.classifier.predict(first.dataset.images[:8])
        preds_second = second.classifier.predict(second.dataset.images[:8])
        np.testing.assert_array_equal(preds_first, preds_second)


class TestRunner:
    def test_grid_covers_all_cells(self, context):
        grid = run_attack_grid(context, "VBPR")
        # 2 scenarios x 1 epsilon x 2 attacks
        assert len(grid.outcomes) == 4
        assert {o.attack_name for o in grid.outcomes} == {"FGSM", "PGD"}

    def test_grid_cached(self, context):
        first = run_attack_grid(context, "VBPR")
        second = run_attack_grid(context, "VBPR")
        assert first is second

    def test_grid_cache_bypass_for_custom_params(self, context):
        cached = run_attack_grid(context, "VBPR")
        custom = run_attack_grid(context, "VBPR", epsilons_255=(4.0,))
        assert custom is not cached
        assert all(o.epsilon_255 == pytest.approx(4.0) for o in custom.outcomes)

    def test_cells_filtering(self, context):
        grid = run_attack_grid(context, "VBPR")
        scenario = grid.scenarios[0]
        cells = grid.cells(scenario=scenario, attack_name="PGD")
        assert len(cells) == 1
        assert cells[0].scenario == scenario

    def test_custom_scenarios(self, context):
        scenario = make_scenario(context.dataset.registry, "jeans", "running_shoe")
        grid = run_attack_grid(context, "VBPR", scenarios=[scenario])
        assert all(o.scenario == scenario for o in grid.outcomes)

    def test_grid_cache_lru_bound(self):
        from repro.experiments import runner

        saved = dict(runner._GRID_CACHE)
        runner.clear_grid_cache()
        try:
            for idx in range(runner._GRID_CACHE_MAX_ENTRIES + 2):
                runner._cache_store((f"config{idx}", "VBPR"), object())
            assert len(runner._GRID_CACHE) == runner._GRID_CACHE_MAX_ENTRIES
            # Oldest entries were evicted first.
            assert ("config0", "VBPR") not in runner._GRID_CACHE
            assert ("config1", "VBPR") not in runner._GRID_CACHE
            # Re-storing an entry refreshes its recency.
            oldest = next(iter(runner._GRID_CACHE))
            runner._cache_store(oldest, object())
            runner._cache_store(("one-more", "VBPR"), object())
            assert oldest in runner._GRID_CACHE
        finally:
            runner.clear_grid_cache()
            runner._GRID_CACHE.update(saved)


class TestFormatters:
    def test_table1(self, context):
        text = format_table1({"amazon_men_like": context.dataset.stats()})
        assert "amazon_men_like" in text
        assert "|U|" in text

    def test_table2_contains_scenarios_and_values(self, context):
        grid = run_attack_grid(context, "VBPR")
        text = format_table2([grid], epsilons_255=(8.0,))
        assert "VBPR" in text
        assert "sock" in text
        assert "FGSM" in text and "PGD" in text

    def test_table3_deduplicates_scenarios(self, context):
        vbpr_grid = run_attack_grid(context, "VBPR")
        amr_grid = run_attack_grid(context, "AMR")
        text = format_table3([vbpr_grid, amr_grid], epsilons_255=(8.0,))
        # Each scenario appears once even across two model grids.
        assert text.count("sock → running_shoe") == 1

    def test_table4(self, context):
        grid = run_attack_grid(context, "VBPR")
        text = format_table4(grid, epsilons_255=(8.0,))
        assert "PSNR" in text and "SSIM" in text and "PSM" in text
