"""Grid-level tests for the ε-ladder engine.

Pins the tentpole contract: ``ladder_mode="exact"`` produces the same
grid as the legacy per-cell loop cell for cell (bitwise on images,
equal on every derived number), ``"warm"`` stays within tolerance, the
stage DAG fingerprints the mode, and run manifests surface the attack
accounting satellites.
"""

import numpy as np
import pytest

from repro.experiments import (
    StageRunner,
    attack_stats_from_rows,
    build_context,
    clear_context_registry,
    clear_grid_cache,
    format_manifest,
    men_config,
    run_attack_grid,
    run_attack_grids,
    stage_fingerprints,
)

TINY = dict(
    scale=0.002,
    image_size=16,
    classifier_epochs=8,
    recommender_epochs=5,
    amr_pretrain_epochs=2,
    cutoff=20,
    epsilons_255=(4.0, 8.0),
)


@pytest.fixture(scope="module")
def context():
    clear_context_registry()
    clear_grid_cache()
    return build_context(men_config(**TINY))


@pytest.fixture(scope="module")
def off_grid(context):
    return run_attack_grid(context, "VBPR", use_cache=False, ladder_mode="off")


class TestExactGridEquivalence:
    def test_exact_matches_per_cell_grid(self, context, off_grid):
        exact = run_attack_grid(context, "VBPR", use_cache=False, ladder_mode="exact")
        assert len(exact.outcomes) == len(off_grid.outcomes)
        for a, b in zip(off_grid.outcomes, exact.outcomes):
            assert (a.scenario.source, a.attack_name, a.epsilon_255) == (
                b.scenario.source,
                b.attack_name,
                b.epsilon_255,
            )
            assert np.array_equal(a.adversarial_images, b.adversarial_images)
            assert a.success_rate == b.success_rate
            assert a.chr_source_after == b.chr_source_after
            assert a.visual.psnr == b.visual.psnr
            assert a.visual.ssim == b.visual.ssim
            assert a.visual.psm == b.visual.psm

    def test_shared_ladder_matches_independent_grids(self, context):
        """run_attack_grids shares one ladder across recommenders without
        changing any number."""
        shared = run_attack_grids(
            context, ("VBPR", "AMR"), use_cache=False, ladder_mode="exact"
        )
        for name, grid in zip(("VBPR", "AMR"), shared):
            independent = run_attack_grid(
                context, name, use_cache=False, ladder_mode="off"
            )
            for a, b in zip(independent.outcomes, grid.outcomes):
                assert np.array_equal(a.adversarial_images, b.adversarial_images)
                assert a.chr_source_after == b.chr_source_after
                assert a.chr_target_before == b.chr_target_before

    def test_warm_within_tolerance(self, context, off_grid):
        warm = run_attack_grid(context, "VBPR", use_cache=False, ladder_mode="warm")
        for a, b in zip(off_grid.outcomes, warm.outcomes):
            if a.attack_name == "FGSM":
                # FGSM has no iterates to warm-start: still bitwise.
                assert np.array_equal(a.adversarial_images, b.adversarial_images)
            else:
                assert abs(a.success_rate - b.success_rate) <= 0.25
                assert abs(a.visual.psnr - b.visual.psnr) <= 2.0
            eps = a.epsilon_255 / 255.0
            clean = context.dataset.images[b.attacked_item_ids]
            assert np.abs(b.adversarial_images - clean).max() <= eps + 1e-6

    def test_outcome_metadata_populated(self, context):
        exact = run_attack_grid(context, "VBPR", use_cache=False, ladder_mode="exact")
        for outcome in exact.outcomes:
            meta = outcome.attack_metadata
            assert meta["ladder"] is True and meta["mode"] == "exact"
            assert meta["iterations"] >= 1
            assert meta["forwards"] > 0 and meta["backwards"] > 0


class TestStageIntegration:
    def test_fingerprint_tracks_ladder_mode(self):
        base = stage_fingerprints(men_config(**TINY))
        warm = stage_fingerprints(men_config(**TINY, ladder_mode="warm"))
        differing = {name for name in base if base[name] != warm[name]}
        assert "attack_grid" in differing
        # the trained artifacts must not churn
        assert "classifier" not in differing
        assert "recommenders" not in differing

    def test_cache_key_ignores_ladder_mode(self):
        assert (
            men_config(**TINY).cache_key()
            == men_config(**TINY, ladder_mode="warm").cache_key()
        )

    def test_run_manifest_carries_attack_stats(self):
        runner = StageRunner(men_config(**TINY), verbose=False)
        results, manifest = runner.run(stages=["attack_grid"])
        assert manifest.attack_stats is not None
        stats = manifest.attack_stats
        assert stats["cells"] == len(results.grid_rows)
        assert stats["attack_forwards"] > 0
        assert stats["attack_backwards"] > 0
        assert stats["ladder_mode"] == "exact"
        assert "attack grid:" in format_manifest(manifest)
        for row in results.grid_rows:
            assert row["ladder_mode"] == "exact"
            assert row["attack_iterations"] >= 1
            assert row["attack_forwards"] > 0

    def test_attack_stats_from_rows_empty(self):
        assert attack_stats_from_rows([]) is None


class TestGridRowParity:
    def test_ladder_rows_match_legacy_rows(self):
        """The attack_grid stage emits the same numbers via the ladder as
        via the per-cell loop (modulo the new accounting columns)."""
        off_results, _ = StageRunner(
            men_config(**TINY, ladder_mode="off"), verbose=False
        ).run(stages=["attack_grid"])
        exact_results, _ = StageRunner(
            men_config(**TINY, ladder_mode="exact"), verbose=False
        ).run(stages=["attack_grid"])
        assert len(off_results.grid_rows) == len(exact_results.grid_rows)
        ignore = {
            "ladder_mode",
            "attack_iterations",
            "attack_forwards",
            "attack_backwards",
            "early_exited",
        }
        for a, b in zip(off_results.grid_rows, exact_results.grid_rows):
            for key in a:
                if key in ignore:
                    continue
                assert a[key] == b[key], key
