"""Unit tests for JSON experiment records."""

import os

import pytest

from repro.experiments import build_context, men_config, run_attack_grid
from repro.experiments.records import (
    OutcomeRecord,
    grid_to_records,
    load_records,
    save_records,
)

TINY = dict(
    scale=0.002,
    image_size=16,
    classifier_epochs=6,
    recommender_epochs=4,
    amr_pretrain_epochs=2,
    cutoff=20,
    epsilons_255=(8.0,),
)


@pytest.fixture(scope="module")
def grid():
    context = build_context(men_config(**TINY))
    return context, run_attack_grid(context, "VBPR")


class TestRecords:
    def test_flattening_covers_all_outcomes(self, grid):
        _, attack_grid = grid
        records = grid_to_records(attack_grid)
        assert len(records) == len(attack_grid.outcomes)
        assert all(isinstance(rec, OutcomeRecord) for rec in records)
        assert all(rec.recommender == "VBPR" for rec in records)

    def test_roundtrip(self, grid, tmp_path):
        context, attack_grid = grid
        path = os.path.join(tmp_path, "results.json")
        save_records([attack_grid], context.config, path)
        payload = load_records(path)
        assert payload["config_hash"] == context.config.cache_key()
        assert payload["dataset"] == "amazon_men_like"
        assert len(payload["outcomes"]) == len(attack_grid.outcomes)
        first = payload["outcomes"][0]
        assert first.source == attack_grid.outcomes[0].scenario.source
        assert first.success_rate == pytest.approx(
            attack_grid.outcomes[0].success_rate
        )

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_records(os.path.join(tmp_path, "nope.json"))

    def test_version_check(self, grid, tmp_path):
        import json

        context, attack_grid = grid
        path = os.path.join(tmp_path, "results.json")
        save_records([attack_grid], context.config, path)
        with open(path) as handle:
            payload = json.load(handle)
        payload["record_version"] = 99
        with open(path, "w") as handle:
            json.dump(payload, handle)
        with pytest.raises(ValueError, match="version"):
            load_records(path)
