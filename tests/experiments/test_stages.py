"""Stage-DAG tests: selective invalidation, round-trip identity, manifests."""

import json
import os

import numpy as np
import pytest

from repro.artifacts import ArtifactStore
from repro.experiments import (
    STAGE_ORDER,
    StageRunner,
    format_manifest,
    format_plan,
    men_config,
    run_stages,
    stage_closure,
    stage_fingerprints,
)

TINY = dict(
    scale=0.002,
    image_size=16,
    classifier_epochs=8,
    recommender_epochs=5,
    amr_pretrain_epochs=2,
    cutoff=20,
    epsilons_255=(8.0,),
)


@pytest.fixture(scope="module")
def store_root(tmp_path_factory):
    return str(tmp_path_factory.mktemp("artifact-store"))


@pytest.fixture(scope="module")
def config():
    return men_config(**TINY)


@pytest.fixture(scope="module")
def first_run(config, store_root):
    """The cold run that populates the store; everything builds."""
    return run_stages(config, store=ArtifactStore(store_root))


class TestFingerprints:
    def test_stable_and_complete(self, config):
        a = stage_fingerprints(config)
        b = stage_fingerprints(men_config(**TINY))
        assert a == b
        assert set(a) == set(STAGE_ORDER)

    def test_epsilon_change_localised(self, config):
        base = stage_fingerprints(config)
        changed = stage_fingerprints(men_config(**{**TINY, "epsilons_255": (4.0, 8.0)}))
        differing = {name for name in STAGE_ORDER if base[name] != changed[name]}
        assert differing == {"attack_grid", "tables"}

    def test_cutoff_change_localised(self, config):
        base = stage_fingerprints(config)
        changed = stage_fingerprints(men_config(**{**TINY, "cutoff": 10}))
        differing = {name for name in STAGE_ORDER if base[name] != changed[name]}
        assert differing == {"clean_scores", "attack_grid", "tables"}

    def test_upstream_change_cascades(self, config):
        base = stage_fingerprints(config)
        changed = stage_fingerprints(men_config(**{**TINY, "scale": 0.003}))
        assert all(base[name] != changed[name] for name in STAGE_ORDER)

    def test_unknown_config_field_rejected(self, config):
        with pytest.raises(ValueError):
            config.field_fingerprint(("not_a_field",))


class TestClosure:
    def test_full_order(self):
        assert stage_closure(STAGE_ORDER) == list(STAGE_ORDER)

    def test_transitive_deps(self):
        assert stage_closure(["vbpr"]) == ["dataset", "classifier", "features", "vbpr"]
        assert stage_closure(["dataset"]) == ["dataset"]

    def test_unknown_stage(self):
        with pytest.raises(ValueError, match="unknown stages"):
            stage_closure(["classifier", "nope"])


class TestRunCaching:
    def test_cold_run_builds_everything(self, first_run):
        _, manifest = first_run
        assert manifest.built == list(STAGE_ORDER)
        assert not manifest.all_hits

    def test_warm_run_all_hits(self, config, store_root, first_run):
        _, manifest = run_stages(config, store=ArtifactStore(store_root))
        assert manifest.all_hits
        assert manifest.cache_hits == list(STAGE_ORDER)
        assert manifest.built == []

    def test_epsilon_change_reruns_only_attack_stages(
        self, config, store_root, first_run
    ):
        changed = men_config(**{**TINY, "epsilons_255": (4.0,)})
        _, manifest = run_stages(changed, store=ArtifactStore(store_root))
        assert manifest.built == ["attack_grid", "tables"]
        assert manifest.cache_hits == [
            "dataset",
            "classifier",
            "features",
            "vbpr",
            "amr",
            "clean_scores",
        ]

    def test_cutoff_change_never_retrains(self, config, store_root, first_run):
        changed = men_config(**{**TINY, "cutoff": 10})
        _, manifest = run_stages(changed, store=ArtifactStore(store_root))
        assert manifest.built == ["clean_scores", "attack_grid", "tables"]
        assert "vbpr" in manifest.cache_hits and "amr" in manifest.cache_hits

    def test_force_rebuild_keeps_downstream_cached(
        self, config, store_root, first_run
    ):
        """Deterministic stages rebuild to identical content, so consumers
        of a forced stage still load from the store."""
        _, manifest = run_stages(
            config, store=ArtifactStore(store_root), force=("features",)
        )
        assert manifest.built == ["features"]
        outcome = next(o for o in manifest.stages if o.name == "features")
        assert outcome.reason == "forced rebuild"
        assert set(manifest.cache_hits) == set(STAGE_ORDER) - {"features"}

    def test_corrupted_artifact_triggers_rebuild_not_silent_load(
        self, config, store_root, first_run
    ):
        store = ArtifactStore(store_root)
        path = store.path_for("stage_vbpr", stage_fingerprints(config)["vbpr"])
        with np.load(path, allow_pickle=False) as archive:
            payload = {key: archive[key] for key in archive.files}
        payload["user_factors"] = payload["user_factors"] + 1.0
        np.savez(path, **payload)
        _, manifest = run_stages(config, store=store)
        assert manifest.built == ["vbpr"]
        outcome = next(o for o in manifest.stages if o.name == "vbpr")
        assert "refused stored artifact" in outcome.reason

    def test_partial_run_builds_only_closure(self, config, tmp_path):
        runner = StageRunner(config, store=ArtifactStore(str(tmp_path)))
        results, manifest = runner.run(stages=("features",))
        assert [o.name for o in manifest.stages] == [
            "dataset",
            "classifier",
            "features",
        ]
        assert results.features is not None and results.vbpr is None

    def test_storeless_run_builds_in_memory(self, config):
        results, manifest = run_stages(config, stages=("dataset",))
        assert manifest.built == ["dataset"]
        assert manifest.store_root is None
        assert results.dataset is not None


class TestRoundTripIdentity:
    """Store-loaded state must be numerically identical to freshly built."""

    @pytest.fixture(scope="class")
    def warm_run(self, config, store_root, first_run):
        return run_stages(config, store=ArtifactStore(store_root))

    def test_features_identical(self, first_run, warm_run):
        fresh, _ = first_run
        loaded, _ = warm_run
        np.testing.assert_allclose(loaded.raw_features, fresh.raw_features, atol=0)
        np.testing.assert_allclose(loaded.features, fresh.features, atol=0)
        np.testing.assert_array_equal(loaded.item_classes, fresh.item_classes)

    def test_classifier_logits_identical(self, first_run, warm_run):
        fresh, _ = first_run
        loaded, _ = warm_run
        images = fresh.dataset.images[:4]
        np.testing.assert_allclose(
            loaded.classifier.predict_proba(images),
            fresh.classifier.predict_proba(images),
            atol=0,
        )

    def test_recommender_scores_identical(self, first_run, warm_run):
        fresh, _ = first_run
        loaded, _ = warm_run
        for name in ("VBPR", "AMR"):
            np.testing.assert_allclose(
                loaded.recommender(name).score_all(),
                fresh.recommender(name).score_all(),
                atol=0,
            )
            np.testing.assert_allclose(
                loaded.clean_scores[name], fresh.clean_scores[name], atol=0
            )
            np.testing.assert_array_equal(
                loaded.clean_top_n[name], fresh.clean_top_n[name]
            )

    def test_tables_byte_identical(self, first_run, warm_run):
        fresh, _ = first_run
        loaded, _ = warm_run
        assert loaded.tables_text == fresh.tables_text
        assert "Table II" in loaded.tables_text

    def test_catalog_state_usable(self, warm_run):
        results, _ = warm_run
        state = results.catalog_state("VBPR")
        assert state.clean_scores is results.clean_scores["VBPR"]
        assert state.features is results.features


class TestManifest:
    def test_json_round_trip(self, first_run, tmp_path):
        _, manifest = first_run
        path = os.path.join(tmp_path, "nested", "manifest.json")
        manifest.save(path)
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
        assert payload["manifest_version"] == 1
        assert payload["built"] == list(STAGE_ORDER)
        assert [entry["name"] for entry in payload["stages"]] == list(STAGE_ORDER)
        assert all(entry["fingerprint"] for entry in payload["stages"])
        assert payload["total_seconds"] > 0

    def test_format_manifest(self, first_run):
        _, manifest = first_run
        text = format_manifest(manifest)
        assert "attack_grid" in text
        assert "8 built" in text


class TestPlan:
    def test_plan_reflects_store_state(self, config, store_root, first_run, tmp_path):
        warm = StageRunner(config, store=ArtifactStore(store_root)).plan()
        assert all(p.would == "load" for p in warm)
        cold = StageRunner(config, store=ArtifactStore(str(tmp_path))).plan()
        assert all(p.would == "build" for p in cold)
        text = format_plan(cold)
        assert "missing" in text and "tables" in text

    def test_plan_without_store(self, config):
        plans = StageRunner(config).plan(stages=("classifier",))
        assert [p.name for p in plans] == ["dataset", "classifier"]
        assert all(not p.cached for p in plans)


class TestContextIntegration:
    def test_build_context_uses_store(self, config, store_root, first_run):
        from repro.experiments import build_context, clear_context_registry

        clear_context_registry()
        context = build_context(config, cache_dir=store_root)
        assert context.manifest is not None
        assert context.manifest.all_hits
        assert context.classifier_accuracy is None or context.classifier_accuracy >= 0
        assert context.catalog_state() is not None
        clear_context_registry()

    def test_service_warm_start_from_stage_results(self, first_run):
        from repro.serving import RecommenderService

        results, _ = first_run
        service = RecommenderService.from_stage_results(results, "VBPR", n=5)
        hits_before = service.stats["hits"]
        top = service.recommend(0)
        assert len(top) == 5
        assert service.stats["hits"] >= hits_before + 1
