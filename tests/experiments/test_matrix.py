"""Scenario-matrix tests.

Two layers: pure fingerprint algebra (which config edit invalidates
which nodes — the column-selective property), and one tiny end-to-end
run crossing FGSM/NES/TRANSFER × none/detector × VBPR/BPRMF against an
artifact store — pinning cube semantics, warm-cache identity,
column-selective rebuilds, and bitwise parity of the undefended column
with the static ``attack_grid`` stage.
"""

import numpy as np
import pytest

from repro.artifacts import ArtifactStore
from repro.experiments import men_config
from repro.experiments.matrix import (
    MATRIX_ATTACKS,
    MATRIX_DEFENSES,
    MATRIX_RECOMMENDERS,
    MatrixConfig,
    MatrixRunner,
    cell_name,
    format_cube,
    matrix_fingerprints,
    matrix_node_order,
    recommender_node,
    run_matrix,
    success_rates_by_attack,
)

TINY = dict(
    scale=0.002,
    image_size=16,
    seed=0,
    classifier_epochs=4,
    recommender_epochs=3,
    amr_pretrain_epochs=2,
    cutoff=10,
    epsilons_255=(8.0,),
)

ROW_KEYS = {
    "recommender", "source", "target", "semantically_similar", "attack",
    "epsilon_255", "chr_source_before", "chr_target_before",
    "chr_source_after", "success_rate", "psnr", "ssim", "psm",
    "num_attacked_items", "ladder_mode", "attack_iterations",
    "attack_forwards", "attack_backwards", "early_exited",
    "defense", "flagged_items",
}


def make_config(**overrides):
    base = overrides.pop("base", None) or men_config(**TINY)
    settings = dict(
        base=base,
        attacks=("FGSM", "NES", "TRANSFER"),
        defenses=("none", "detector"),
        recommenders=("VBPR", "BPRMF"),
        nes_steps=2,
        nes_samples=4,
    )
    settings.update(overrides)
    return MatrixConfig(**settings)


def full_config(**overrides):
    settings = dict(
        base=men_config(**TINY),
        attacks=MATRIX_ATTACKS,
        defenses=MATRIX_DEFENSES,
        recommenders=MATRIX_RECOMMENDERS,
    )
    settings.update(overrides)
    return MatrixConfig(**settings)


def changed_nodes(before: MatrixConfig, after: MatrixConfig) -> set:
    a, b = matrix_fingerprints(before), matrix_fingerprints(after)
    assert set(a) == set(b)
    return {name for name in a if a[name] != b[name]}


class TestNodeNaming:
    def test_cell_name(self):
        assert cell_name("squeeze", "PGD", "AMR") == "cell:squeeze/PGD/AMR"

    def test_recommender_node_routing(self):
        # BPR-MF is feature-free: one shared node for every defense.
        assert recommender_node("adv_train", "BPRMF") == "recommender:shared/BPRMF"
        # Identity-ingest defenses reuse the base stage artifacts.
        assert recommender_node("none", "VBPR") == "vbpr"
        assert recommender_node("detector", "AMR") == "amr"
        # Retraining defenses get their own per-defense nodes.
        assert recommender_node("squeeze", "VBPR") == "recommender:squeeze/VBPR"


class TestConfigValidation:
    def test_unknown_axis_values_rejected(self):
        with pytest.raises(ValueError):
            make_config(attacks=("FGSM", "DEEPFOOL"))
        with pytest.raises(ValueError):
            make_config(defenses=("none", "firewall"))
        with pytest.raises(ValueError):
            make_config(recommenders=("VBPR", "NCF"))

    def test_empty_and_duplicate_axes_rejected(self):
        with pytest.raises(ValueError):
            make_config(attacks=())
        with pytest.raises(ValueError):
            make_config(defenses=("none", "none"))

    def test_bad_knobs_rejected(self):
        with pytest.raises(ValueError):
            make_config(detector_fpr=1.5)
        with pytest.raises(ValueError):
            make_config(adv_epochs=0)

    def test_unknown_fingerprint_field_rejected(self):
        with pytest.raises(ValueError):
            make_config().field_fingerprint(("warp_factor",))


class TestFingerprintInvalidation:
    """The invalidation matrix: each knob owns exactly one column."""

    def test_every_node_fingerprinted(self):
        config = full_config()
        fps = matrix_fingerprints(config)
        for name, _ in matrix_node_order(config):
            assert name in fps
            assert len(fps[name]) == 16

    def test_identical_configs_agree(self):
        assert matrix_fingerprints(full_config()) == matrix_fingerprints(
            full_config()
        )

    def test_retraining_defense_knob_owns_its_column(self):
        changed = changed_nodes(full_config(), full_config(squeeze_bits=5))
        expected = {"defense:squeeze"}
        expected |= {f"recommender:squeeze/{rec}" for rec in ("VBPR", "AMR")}
        expected |= {
            cell_name("squeeze", attack, rec)
            for attack in MATRIX_ATTACKS
            for rec in MATRIX_RECOMMENDERS
        }
        assert changed == expected

    def test_identity_defense_knob_owns_only_its_cells(self):
        # detector never retrains, so no recommender node invalidates.
        changed = changed_nodes(full_config(), full_config(detector_fpr=0.1))
        expected = {"defense:detector"} | {
            cell_name("detector", attack, rec)
            for attack in MATRIX_ATTACKS
            for rec in MATRIX_RECOMMENDERS
        }
        assert changed == expected

    def test_attack_knob_owns_its_row(self):
        changed = changed_nodes(full_config(), full_config(nes_sigma=0.02))
        expected = {
            cell_name(defense, "NES", rec)
            for defense in MATRIX_DEFENSES
            for rec in MATRIX_RECOMMENDERS
        }
        assert changed == expected

    def test_transfer_seed_owns_surrogate_and_transfer_cells(self):
        changed = changed_nodes(full_config(), full_config(transfer_seed=7))
        expected = {"surrogate"} | {
            cell_name(defense, "TRANSFER", rec)
            for defense in MATRIX_DEFENSES
            for rec in MATRIX_RECOMMENDERS
        }
        assert changed == expected

    def test_eval_change_touches_every_cell_but_no_model(self):
        base = men_config(**{**TINY, "epsilons_255": (4.0, 8.0)})
        changed = changed_nodes(full_config(), full_config(base=base))
        matrix_nodes = {name for name, _ in matrix_node_order(full_config())}
        cells = {n for n in matrix_nodes if n.startswith("cell:")}
        assert cells <= changed
        # No defense, recommender, or surrogate retrains for an ε edit.
        assert not (changed & (matrix_nodes - cells))


@pytest.fixture(scope="module")
def store_root(tmp_path_factory):
    return str(tmp_path_factory.mktemp("matrix-store"))


@pytest.fixture(scope="module")
def config():
    return make_config()


@pytest.fixture(scope="module")
def cold(config, store_root):
    """The cold run that populates the store; every node builds."""
    return run_matrix(config, store=ArtifactStore(store_root))


class TestMatrixRun:
    def test_cold_run_builds_every_node(self, cold, config):
        _, manifest = cold
        node_names = [name for name, _ in matrix_node_order(config)]
        assert set(node_names) <= set(manifest.built)
        assert sorted(manifest.cells) == sorted(
            name for name in node_names if name.startswith("cell:")
        )
        assert len(manifest.cells) == 12  # 2 defenses x 3 attacks x 2 recs
        for fingerprint in manifest.cells.values():
            assert len(fingerprint) == 16

    def test_cube_covers_every_cell_with_schema_rows(self, cold, config):
        results, manifest = cold
        scenarios_run = None
        for defense in config.defenses:
            for attack in config.attacks:
                for rec in config.recommenders:
                    rows = results.select(defense, attack, rec)
                    assert rows, (defense, attack, rec)
                    if scenarios_run is None:
                        scenarios_run = len(rows)
                    # Every cell measures the same scenario set.
                    assert len(rows) == scenarios_run
                    for row in rows:
                        assert set(row) == ROW_KEYS
                        assert row["defense"] == defense
                        assert row["attack"] == attack
                        assert row["recommender"] == rec
                        assert row["epsilon_255"] == 8.0
                        assert 0.0 <= row["success_rate"] <= 1.0
                        assert row["flagged_items"] >= 0
                        assert row["num_attacked_items"] > 0

    def test_bprmf_is_the_attack_free_control(self, cold):
        results, _ = cold
        rows = results.select(recommender="BPRMF")
        assert rows
        for row in rows:
            assert row["chr_source_after"] == row["chr_source_before"]

    def test_undefended_cells_never_flag(self, cold):
        results, _ = cold
        for row in results.select(defense="none"):
            assert row["flagged_items"] == 0

    def test_success_rate_summary(self, cold, config):
        results, manifest = cold
        assert set(manifest.success_rates) == set(config.attacks)
        assert manifest.success_rates == success_rates_by_attack(results.rows)
        for rate in manifest.success_rates.values():
            assert 0.0 <= rate <= 1.0

    def test_format_cube(self, cold):
        results, _ = cold
        text = format_cube(results.rows)
        for token in ("defense", "detector", "TRANSFER", "NES", "flagged"):
            assert token in text
        assert format_cube([]) == "scenario matrix: no rows"

    def test_manifest_dict_round_trips(self, cold, tmp_path):
        import json

        _, manifest = cold
        path = str(tmp_path / "matrix.json")
        manifest.save(path)
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
        assert payload["manifest_version"] == 1
        assert payload["cells"] == manifest.cells
        assert payload["attack_stats"]["cells"] > 0

    def test_warm_rerun_hits_every_node_with_identical_rows(
        self, cold, config, store_root
    ):
        fresh, _ = cold
        loaded, manifest = run_matrix(config, store=ArtifactStore(store_root))
        assert manifest.built == []
        assert loaded.rows == fresh.rows

    def test_detector_edit_reruns_only_the_detector_column(
        self, cold, config, store_root
    ):
        fresh, cold_manifest = cold
        edited = make_config(detector_fpr=0.2)
        results, manifest = run_matrix(edited, store=ArtifactStore(store_root))
        expected = {
            cell_name("detector", attack, rec)
            for attack in config.attacks
            for rec in config.recommenders
        }
        assert set(manifest.built) == expected
        # The untouched column is served from the store, bit for bit.
        assert results.select(defense="none") == fresh.select(defense="none")
        for name, fingerprint in manifest.cells.items():
            moved = fingerprint != cold_manifest.cells[name]
            assert moved == name.startswith("cell:detector/"), name

    def test_plan_reflects_store_state(self, cold, config, store_root, tmp_path):
        warm = MatrixRunner(config, store=ArtifactStore(store_root)).plan()
        assert all(p.would == "load" for p in warm)
        cold_plan = MatrixRunner(config, store=ArtifactStore(str(tmp_path))).plan()
        matrix_plans = [p for p in cold_plan if ":" in p.name]
        assert matrix_plans and all(p.would == "build" for p in matrix_plans)

    def test_unknown_force_node_rejected(self, config):
        with pytest.raises(ValueError, match="unknown matrix nodes"):
            MatrixRunner(config).run(force=("cell:nope/FGSM/VBPR",))

    def test_none_column_matches_attack_grid(self, cold, config, store_root):
        """The undefended FGSM/VBPR cells must be bitwise identical to
        the static ``attack_grid`` path — the matrix generalises the
        stage, it must not drift from it."""
        from repro.experiments import build_context, clear_context_registry
        from repro.experiments.runner import run_attack_grid
        from repro.experiments.stages import _grid_row

        fresh, _ = cold
        clear_context_registry()
        try:
            context = build_context(config.base, cache_dir=store_root)
            grid = run_attack_grid(context, "VBPR", attack_names=("FGSM",))
        finally:
            clear_context_registry()
        expected = [
            _grid_row("VBPR", outcome, config.base.ladder_mode)
            for outcome in grid.outcomes
        ]
        got = [
            {k: v for k, v in row.items() if k not in ("defense", "flagged_items")}
            for row in fresh.select(defense="none", attack="FGSM", recommender="VBPR")
        ]
        key = lambda row: (row["source"], row["target"], row["epsilon_255"])
        assert sorted(got, key=key) == sorted(expected, key=key)
