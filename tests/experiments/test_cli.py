"""Unit tests for the command-line interface."""

import os

import pytest

from repro.cli import build_parser, main

FAST = [
    "--scale", "0.002",
    "--seed", "0",
    "--quiet",
]


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_attack_defaults(self):
        args = build_parser().parse_args(["attack"])
        assert args.attack == "pgd"
        assert args.eps == 8.0
        assert args.model == "vbpr"

    def test_dataset_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stats", "--dataset", "movies"])

    def test_attack_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["attack", "--attack", "deepfool"])


class TestStatsCommand:
    def test_prints_table1(self, capsys):
        code = main(["stats", "--dataset", "men", "--scale", "0.002"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "amazon_men_like" in out
        assert "sock" in out

    def test_women_dataset(self, capsys):
        code = main(["stats", "--dataset", "women", "--scale", "0.002"])
        assert code == 0
        assert "maillot" in capsys.readouterr().out


class TestTrainCommand:
    def test_reports_metrics(self, capsys, monkeypatch):
        self._shrink_training(monkeypatch)
        code = main(["train", "--dataset", "men", *FAST])
        assert code == 0
        out = capsys.readouterr().out
        assert "classifier accuracy" in out
        assert "VBPR" in out and "AMR" in out

    @staticmethod
    def _shrink_training(monkeypatch):
        """Make CLI runs affordable for unit tests."""
        import repro.cli as cli
        from repro.experiments import men_config

        def tiny_config(args):
            return men_config(
                scale=args.scale,
                seed=args.seed,
                image_size=16,
                classifier_epochs=4,
                recommender_epochs=4,
                amr_pretrain_epochs=2,
            )

        monkeypatch.setattr(cli, "_make_config", tiny_config)


class TestAttackCommand:
    def test_end_to_end(self, capsys, monkeypatch, tmp_path):
        TestTrainCommand._shrink_training(monkeypatch)
        png = os.path.join(tmp_path, "grid.png")
        code = main(
            [
                "attack",
                "--dataset", "men",
                *FAST,
                "--attack", "fgsm",
                "--eps", "8",
                "--cutoff", "20",
                "--save-images", png,
                "--num-images", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "success rate" in out
        assert "CHR@20" in out
        assert os.path.exists(png)

    def test_unknown_category_is_graceful(self, capsys, monkeypatch):
        TestTrainCommand._shrink_training(monkeypatch)
        code = main(
            ["attack", "--dataset", "men", *FAST, "--source", "flying_carpet"]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestTablesCommand:
    def test_prints_all_tables(self, capsys, monkeypatch):
        TestTrainCommand._shrink_training(monkeypatch)
        import repro.experiments.runner as runner

        runner.clear_grid_cache()
        code = main(["tables", "--dataset", "men", *FAST])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table II" in out
        assert "Table III" in out
        assert "Table IV" in out


class TestBenchCommand:
    def test_bench_no_grid_writes_report(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "bench.json"
        code = main(
            [
                "bench", "--no-grid", "--repeats", "1", "--scale", "0.002",
                "--image-size", "16", "--quiet", "--out", str(out_path),
            ]
        )
        assert code == 0
        assert "speedup" in capsys.readouterr().out

        payload = json.loads(out_path.read_text())
        assert set(payload["modes"]) == {"float64_baseline", "float32_optimized"}
        assert payload["modes"]["float32_optimized"]["dtype"] == "float32"
        assert payload["modes"]["float64_baseline"]["conv_bn_folding"] is False
        for stage in ("forward", "backward", "fgsm", "pgd"):
            assert stage in payload["speedup"]
        assert "attack_grid" not in payload["speedup"]


class TestServeBenchCommand:
    def test_smoke_writes_report(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "serving.json"
        code = main(["serve-bench", "--smoke", "--quiet", "--out", str(out_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "Serving benchmark" in out
        assert "warm_cache" in out

        payload = json.loads(out_path.read_text())
        assert set(payload["phases"]) == {
            "cold", "warm_cache", "post_invalidation", "defended",
        }
        for phase in payload["phases"].values():
            for key in ("throughput_rps", "p50_ms", "p95_ms", "p99_ms"):
                assert phase[key] > 0
        assert 0.0 <= payload["phases"]["defended"]["detection_rate"] <= 1.0
        assert "added_p95_ms" in payload["phases"]["defended"]

    def test_serve_bench_defaults(self):
        args = build_parser().parse_args(["serve-bench"])
        assert args.out == "BENCH_serving.json"
        # None at parse time: the single-process path substitutes 600
        # requests / zipf 1.1, the sharded path 60000 / 0.9.
        assert args.requests is None
        assert args.zipf is None
        assert args.workers is None
        assert args.users == 100_000
        assert args.items == 2000
        assert not args.smoke

    def test_serve_bench_workers_parses_counts(self):
        args = build_parser().parse_args(["serve-bench", "--workers", "1,2,4"])
        assert args.workers == "1,2,4"


class TestRunCommand:
    def test_explain_is_free_and_lists_all_stages(self, capsys, tmp_path):
        code = main(
            ["run", "--dataset", "men", *FAST,
             "--cache-dir", str(tmp_path), "--explain"]
        )
        assert code == 0
        out = capsys.readouterr().out
        for stage in ("dataset", "classifier", "features", "vbpr", "amr",
                      "clean_scores", "attack_grid", "tables"):
            assert stage in out
        assert "build" in out
        assert not any(tmp_path.iterdir())  # --explain must not build anything

    def test_run_writes_manifest_and_caches(self, capsys, tmp_path):
        import json

        cache = str(tmp_path / "store")
        manifest_path = tmp_path / "run.json"
        argv = [
            "run", "--dataset", "men", *FAST,
            "--cache-dir", cache, "--stages", "dataset",
            "--manifest", str(manifest_path),
        ]
        assert main(argv) == 0
        payload = json.loads(manifest_path.read_text())
        assert payload["manifest_version"] == 1
        assert payload["built"] == ["dataset"]

        capsys.readouterr()
        assert main(argv) == 0
        out = capsys.readouterr().out
        payload = json.loads(manifest_path.read_text())
        assert payload["built"] == []
        assert payload["cache_hits"] == ["dataset"]
        assert "1 cache hit(s), 0 built" in out

    def test_unknown_stage_is_graceful(self, capsys):
        code = main(["run", "--dataset", "men", *FAST, "--stages", "warp_drive"])
        assert code == 2
        assert "unknown stages" in capsys.readouterr().err

    def test_bad_epsilons_is_graceful(self, capsys):
        code = main(["run", "--dataset", "men", *FAST, "--epsilons", "8,oops"])
        assert code == 2
        assert "epsilons" in capsys.readouterr().err

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.cutoff == 100
        assert args.stages is None
        assert not args.explain
        assert not args.force
