"""Unit tests for the artifact payload protocol and the content-addressed store."""

import json
import os

import numpy as np
import pytest

from repro.artifacts import (
    ArtifactIntegrityError,
    ArtifactMissingError,
    ArtifactSchemaError,
    ArtifactStore,
    FingerprintMismatchError,
    content_hash,
    read_header,
    read_payload,
    write_payload,
)

ARRAYS = {
    "weights": np.arange(12, dtype=np.float64).reshape(3, 4),
    "bias": np.zeros(3),
}


class TestPayloadProtocol:
    def test_round_trip(self, tmp_path):
        path = os.path.join(tmp_path, "a.npz")
        digest = write_payload(
            path, kind="demo", schema_version=1, arrays=ARRAYS, meta={"note": "x"}
        )
        arrays, meta, recorded = read_payload(path, kind="demo", schema_version=1)
        assert recorded == digest
        assert meta == {"note": "x"}
        np.testing.assert_array_equal(arrays["weights"], ARRAYS["weights"])

    def test_missing_file(self, tmp_path):
        with pytest.raises(ArtifactMissingError):
            read_payload(os.path.join(tmp_path, "nope.npz"), kind="demo", schema_version=1)

    def test_kind_mismatch(self, tmp_path):
        path = os.path.join(tmp_path, "a.npz")
        write_payload(path, kind="demo", schema_version=1, arrays=ARRAYS)
        with pytest.raises(ArtifactSchemaError, match="kind 'demo'"):
            read_payload(path, kind="other", schema_version=1)

    def test_schema_version_mismatch(self, tmp_path):
        path = os.path.join(tmp_path, "a.npz")
        write_payload(path, kind="demo", schema_version=1, arrays=ARRAYS)
        with pytest.raises(ArtifactSchemaError, match="schema version 1"):
            read_payload(path, kind="demo", schema_version=2)

    def test_fingerprint_mismatch(self, tmp_path):
        path = os.path.join(tmp_path, "a.npz")
        write_payload(
            path, kind="demo", schema_version=1, arrays=ARRAYS, fingerprint="aaa"
        )
        read_payload(path, kind="demo", schema_version=1, fingerprint="aaa")
        with pytest.raises(FingerprintMismatchError):
            read_payload(path, kind="demo", schema_version=1, fingerprint="bbb")

    def test_unversioned_file_refused(self, tmp_path):
        path = os.path.join(tmp_path, "legacy.npz")
        np.savez(path, **ARRAYS)
        with pytest.raises(ArtifactSchemaError, match="envelope"):
            read_payload(path, kind="demo", schema_version=1)

    def test_tampered_payload_refused(self, tmp_path):
        path = os.path.join(tmp_path, "a.npz")
        write_payload(path, kind="demo", schema_version=1, arrays=ARRAYS)
        with np.load(path) as archive:
            payload = {key: archive[key] for key in archive.files}
        payload["weights"] = payload["weights"] * 2.0
        np.savez(path, **payload)
        with pytest.raises(ArtifactIntegrityError):
            read_payload(path, kind="demo", schema_version=1)

    def test_reserved_array_names_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="reserved"):
            write_payload(
                os.path.join(tmp_path, "a.npz"),
                kind="demo",
                schema_version=1,
                arrays={"__secret__": np.zeros(1)},
            )

    def test_content_hash_sensitivity(self):
        base = content_hash(ARRAYS)
        assert base == content_hash({k: v.copy() for k, v in ARRAYS.items()})
        changed = {**ARRAYS, "bias": np.ones(3)}
        assert content_hash(changed) != base
        assert content_hash(ARRAYS, {"m": 1}) != base

    def test_header_readable_without_payload(self, tmp_path):
        path = os.path.join(tmp_path, "a.npz")
        write_payload(
            path, kind="demo", schema_version=3, arrays=ARRAYS, fingerprint="fp"
        )
        header = read_header(path)
        assert header["kind"] == "demo"
        assert header["schema_version"] == 3
        assert header["fingerprint"] == "fp"


class TestArtifactStore:
    def test_save_load_round_trip(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        ref = store.save("stage_x", "deadbeef", ARRAYS, meta={"note": "hi"})
        assert store.exists("stage_x", "deadbeef")
        loaded = store.load("stage_x", "deadbeef")
        assert loaded.ref.content_hash == ref.content_hash
        assert loaded.meta["note"] == "hi"
        np.testing.assert_array_equal(loaded.arrays["weights"], ARRAYS["weights"])

    def test_missing_artifact(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        assert not store.exists("stage_x", "cafecafe")
        with pytest.raises(ArtifactMissingError):
            store.load("stage_x", "cafecafe")

    def test_distinct_fingerprints_distinct_paths(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        a = store.save("stage_x", "aaaa", ARRAYS)
        b = store.save("stage_x", "bbbb", {"weights": np.ones(2)})
        assert a.path != b.path
        np.testing.assert_array_equal(store.load("stage_x", "aaaa").arrays["weights"], ARRAYS["weights"])

    def test_unsafe_address_components_rejected(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        with pytest.raises(ValueError):
            store.path_for("../escape", "aaaa")
        with pytest.raises(ValueError):
            store.path_for("stage_x", "a/b")

    def test_list(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        store.save("stage_x", "aaaa", ARRAYS)
        store.save("stage_y", "bbbb", ARRAYS)
        refs = store.list()
        assert {(r.kind, r.fingerprint) for r in refs} == {
            ("stage_x", "aaaa"),
            ("stage_y", "bbbb"),
        }
        assert [r.fingerprint for r in store.list("stage_x")] == ["aaaa"]

    def test_schema_version_refusal_through_store(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        store.save("stage_x", "aaaa", ARRAYS, schema_version=1)
        with pytest.raises(ArtifactSchemaError):
            store.load("stage_x", "aaaa", schema_version=2)

    def test_wrong_fingerprint_in_file_refused(self, tmp_path):
        """A file renamed to another fingerprint's address must not load."""
        store = ArtifactStore(str(tmp_path))
        ref = store.save("stage_x", "aaaa", ARRAYS)
        os.rename(ref.path, store.path_for("stage_x", "bbbb"))
        with pytest.raises(FingerprintMismatchError):
            store.load("stage_x", "bbbb")


class TestUnifiedSerializationPaths:
    """nn/data serialization and recommender state share the envelope."""

    def test_module_state_envelope(self, tmp_path):
        from repro.nn import TinyResNet, load_state, save_state

        net = TinyResNet(num_classes=3, widths=(4,), blocks_per_stage=(1,), seed=0)
        path = os.path.join(tmp_path, "net.npz")
        save_state(net, path, fingerprint="fp1")
        header = read_header(path)
        assert header["kind"] == "module_state"
        assert header["fingerprint"] == "fp1"
        clone = TinyResNet(num_classes=3, widths=(4,), blocks_per_stage=(1,), seed=1)
        load_state(clone, path, fingerprint="fp1")
        with pytest.raises(FingerprintMismatchError):
            load_state(clone, path, fingerprint="fp2")

    def test_recommender_state_dict_round_trip(self):
        from repro.data import tiny_dataset
        from repro.recommenders import VBPR, VBPRConfig

        dataset = tiny_dataset(seed=0, image_size=16)
        features = np.random.default_rng(0).normal(size=(dataset.num_items, 8))
        model = VBPR(
            dataset.num_users, dataset.num_items, features, VBPRConfig(epochs=2, seed=0)
        ).fit(dataset.feedback)
        clone = VBPR(
            dataset.num_users, dataset.num_items, features, VBPRConfig(epochs=2, seed=9)
        )
        clone.load_state_dict(model.state_dict())
        assert clone.is_fitted
        np.testing.assert_allclose(clone.score_all(), model.score_all(), atol=0)

    def test_recommender_state_dict_names_bad_keys(self):
        from repro.data import tiny_dataset
        from repro.recommenders import VBPR, VBPRConfig

        dataset = tiny_dataset(seed=0, image_size=16)
        features = np.zeros((dataset.num_items, 4))
        model = VBPR(dataset.num_users, dataset.num_items, features, VBPRConfig(epochs=1))
        state = {name: np.zeros(1) for name in ("user_factors", "bogus")}
        with pytest.raises(ValueError) as excinfo:
            model.load_state_dict(state)
        message = str(excinfo.value)
        assert "item_factors" in message  # missing key named
        assert "bogus" in message  # unexpected key named
