"""Unit tests for the ingest-path feature screen and its quarantine
semantics on the single-process service and the sharded router."""

import numpy as np
import pytest

from repro.defenses import ReconstructionDetector
from repro.rng import rng_from_seed
from repro.serving import (
    FeatureScreen,
    RecommenderService,
    ScreenReport,
    ShardedService,
)
from repro.serving.sharded import build_synthetic_system


@pytest.fixture(scope="module")
def system():
    # build_synthetic_system makes the catalog features low-rank plus a
    # small noise floor, so off-manifold pushes are actually detectable.
    return build_synthetic_system(40, 30, feature_dim=16, seed=3)


@pytest.fixture(scope="module")
def screen(system):
    model, *_ = system
    return FeatureScreen.fit(model.features, num_components=4, target_fpr=0.05)


def _garbage(model, items, seed=11):
    rng = rng_from_seed(seed)
    return model.features[items] + rng.normal(0.0, 5.0, (len(items), model.feature_dim))


def _calm_items(screen, model, count=3):
    """Item ids whose clean features sit well under the threshold, so a
    clean re-push of them is deterministically not a false positive."""
    scores = screen.detector.score(model.features)
    return np.argsort(scores)[:count]


class TestFeatureScreen:
    def test_requires_fitted_and_calibrated_detector(self, system):
        model, *_ = system
        with pytest.raises(ValueError):
            FeatureScreen(ReconstructionDetector())
        uncalibrated = ReconstructionDetector(num_components=4).fit(model.features)
        with pytest.raises(ValueError):
            FeatureScreen(uncalibrated)

    def test_misaligned_push_rejected(self, screen, system):
        model, *_ = system
        with pytest.raises(ValueError):
            screen.screen([0, 1, 2], model.features[:2])

    def test_clean_push_mostly_passes(self, screen, system):
        model, *_ = system
        report = screen.screen(np.arange(model.num_items), model.features)
        # Calibrated at the 95% clean quantile: ~5% false positives.
        assert report.flag_rate <= 0.1
        assert report.num_passed + report.num_flagged == model.num_items

    def test_garbage_push_quarantined(self, screen, system):
        model, *_ = system
        items = np.array([2, 9, 17])
        report = screen.screen(items, _garbage(model, items))
        assert report.num_flagged == 3
        np.testing.assert_array_equal(report.quarantined_item_ids, items)
        assert report.passed_item_ids.size == 0
        assert (report.scores > report.threshold).all()

    def test_report_partitions_the_push(self, screen, system):
        model, *_ = system
        calm = _calm_items(screen, model, count=2)
        items = np.concatenate([calm, [5]])
        features = np.vstack([model.features[calm], _garbage(model, [5])])
        report = screen.screen(items, features)
        assert isinstance(report, ScreenReport)
        np.testing.assert_array_equal(report.passed_item_ids, calm)
        np.testing.assert_array_equal(report.quarantined_item_ids, [5])
        assert report.flag_rate == pytest.approx(1 / 3)


class TestServiceQuarantine:
    def _service(self, model, screen=None):
        return RecommenderService(model, screen=screen, n=6)

    def test_quarantined_push_is_a_recorded_noop(self, system, screen):
        model, *_ = system
        service = self._service(model, screen)
        before = {user: service.recommend(user).copy() for user in range(10)}
        items = [2, 9, 17]
        report = service.push_item_features(items, _garbage(model, items))
        assert report.screened
        assert report.quarantined_items == items
        assert report.num_quarantined == 3
        assert report.item_ids.size == 0
        # Nothing reached the scorer: no rescore, no invalidation.
        assert not report.scores_changed
        assert report.num_invalidated == 0
        assert service.stats["feature_updates"] == 0
        for user, served in before.items():
            np.testing.assert_array_equal(service.recommend(user), served)
        assert service.last_screen is not None
        assert service.last_screen.num_flagged == 3

    def test_partial_push_applies_only_passed_items(self, system, screen):
        model, *_ = system
        service = self._service(model, screen)
        twin = self._service(model)  # no screen: the reference system
        for user in range(model.num_users):
            service.recommend(user)
            twin.recommend(user)
        # Push on-manifold donor features (another calm item's row) so
        # the passed subset is deterministic, alongside one garbage row.
        calm = _calm_items(screen, model, count=6)
        targets, donors = calm[:3], calm[3:]
        items = np.concatenate([targets, [7]])
        features = np.vstack([model.features[donors], _garbage(model, [7])])
        report = service.push_item_features(items, features)
        np.testing.assert_array_equal(report.item_ids, targets)
        assert report.quarantined_items == [7]
        assert report.scores_changed
        # The defended service now serves exactly what an undefended
        # service pushed only the passed items would serve.
        twin.push_item_features(targets, model.features[donors])
        for user in range(model.num_users):
            np.testing.assert_array_equal(
                service.recommend(user), twin.recommend(user)
            )

    def test_clean_push_passes_screen(self, system, screen):
        model, *_ = system
        service = self._service(model, screen)
        calm = _calm_items(screen, model)
        report = service.push_item_features(calm, model.features[calm])
        assert report.screened
        assert report.quarantined_items == []
        np.testing.assert_array_equal(report.item_ids, calm)

    def test_disabled_screen_keeps_push_path_unchanged(self, system):
        model, *_ = system
        service = self._service(model)
        items = [2, 9]
        report = service.push_item_features(items, _garbage(model, items))
        assert not report.screened
        assert report.quarantined_items == []
        assert report.scores_changed
        assert service.last_screen is None


class TestRouterQuarantine:
    @pytest.fixture()
    def service(self, system, screen):
        model, *_ = system
        service = ShardedService.build(
            model, num_shards=2, backend="local", screen=screen, n=6
        )
        yield service
        service.close()

    def test_fully_quarantined_push_spends_no_epoch(self, service, system):
        model, *_ = system
        before = {user: service.recommend(user).copy() for user in range(10)}
        epoch = service.router.epoch
        items = np.array([2, 9, 17])
        returned = service.push_item_features(items, _garbage(model, items))
        assert returned == epoch
        assert service.router.epoch == epoch
        verdict = service.router.last_screen
        assert verdict is not None and verdict.num_flagged == 3
        service.flush()
        for user, served in before.items():
            np.testing.assert_array_equal(service.recommend(user), served)

    def test_passed_items_fan_out_normally(self, service, system, screen):
        model, *_ = system
        epoch = service.router.epoch
        calm = _calm_items(screen, model, count=6)
        targets, donors = calm[:3], calm[3:]
        items = np.concatenate([targets, [7]])
        features = np.vstack([model.features[donors], _garbage(model, [7])])
        returned = service.push_item_features(items, features)
        assert returned == epoch + 1
        service.flush()
        verdict = service.router.last_screen
        np.testing.assert_array_equal(verdict.quarantined_item_ids, [7])
        # The quarantined item's features never left the router: shards
        # serve lists identical to a screenless push of the passed set.
        twin = ShardedService.build(model, num_shards=2, backend="local", n=6)
        try:
            twin.push_item_features(targets, model.features[donors])
            twin.flush()
            for user in range(model.num_users):
                np.testing.assert_array_equal(
                    service.recommend(user), twin.recommend(user)
                )
        finally:
            twin.close()
