"""Sharded-vs-single-process equivalence, bit for bit.

The sharded tier's contract: a :class:`ShardedService` over 1, 2 or 4
shards returns **bitwise-identical** recommendations to one
:class:`RecommenderService` on the same model, under arbitrary
interleavings of ``recommend`` and ``push_item_features`` — the shards
score against the published shared item side with the same float64
expressions in the same order, so there is no tolerance here, only
``assert_array_equal``.  Runs on all three recommenders of the paper
(BPR-MF as the attack-immune control) and on both backends: ``local``
(in-process shards, the fast path for the property sweep) and
``process`` (real workers + shared memory + queue transport).
"""

import numpy as np
import pytest

from repro.data import tiny_dataset
from repro.recommenders import (
    AMR,
    AMRConfig,
    BPRMF,
    BPRMFConfig,
    VBPR,
    VBPRConfig,
)
from repro.serving import RecommenderService, ShardedService
from repro.serving.sharded import segment_exists

N = 10
FEATURE_DIM = 12


@pytest.fixture(scope="module")
def dataset():
    return tiny_dataset(seed=0, image_size=16)


@pytest.fixture(scope="module")
def features(dataset):
    rng = np.random.default_rng(11)
    base = rng.normal(0, 1, (dataset.num_categories, FEATURE_DIM))
    return base[dataset.item_categories] + rng.normal(
        0, 0.3, (dataset.num_items, FEATURE_DIM)
    )


@pytest.fixture(scope="module")
def models(dataset, features):
    return {
        "bprmf": BPRMF(
            dataset.num_users, dataset.num_items, BPRMFConfig(epochs=4, seed=0)
        ).fit(dataset.feedback),
        "vbpr": VBPR(
            dataset.num_users,
            dataset.num_items,
            features,
            VBPRConfig(epochs=4, seed=0),
        ).fit(dataset.feedback),
        "amr": AMR(
            dataset.num_users,
            dataset.num_items,
            features,
            AMRConfig(epochs=4, pretrain_epochs=2, seed=0),
        ).fit(dataset.feedback),
    }


def _build_pair(model_name, models, dataset, features, num_shards, backend):
    model = models[model_name]
    visual = model_name != "bprmf"
    feats = np.array(features, copy=True) if visual else None
    single = RecommenderService(
        model, feedback=dataset.feedback, features=feats, n=N
    )
    sharded = ShardedService.build(
        model,
        num_shards=num_shards,
        backend=backend,
        feedback=dataset.feedback,
        features=np.array(features, copy=True) if visual else None,
        n=N,
    )
    return single, sharded, visual


def _random_interleaving(
    single, sharded, dataset, visual, trial_seed, steps=120
):
    rng = np.random.default_rng(1000 * trial_seed + 13)
    for step in range(steps):
        if rng.random() < 0.25:
            count = int(rng.integers(1, 4))
            item_ids = rng.choice(dataset.num_items, size=count, replace=False)
            new_features = rng.normal(
                0, rng.uniform(0.3, 3.0), (count, FEATURE_DIM)
            )
            single.push_item_features(item_ids, new_features)
            sharded.push_item_features(item_ids, new_features)
            sharded.flush()
        else:
            user = int(rng.integers(0, dataset.num_users))
            np.testing.assert_array_equal(
                sharded.recommend(user),
                single.recommend(user),
                err_msg=f"user {user} diverged at step {step} "
                f"({len(sharded.router.handles)} shards)",
            )
    # Sweep every user once more so no shard escapes scrutiny.
    for user in range(dataset.num_users):
        np.testing.assert_array_equal(
            sharded.recommend(user), single.recommend(user)
        )


@pytest.mark.parametrize("model_name", ["bprmf", "vbpr", "amr"])
@pytest.mark.parametrize("num_shards", [1, 2, 4])
def test_sharded_matches_single_process(
    models, dataset, features, model_name, num_shards
):
    single, sharded, visual = _build_pair(
        model_name, models, dataset, features, num_shards, backend="local"
    )
    try:
        _random_interleaving(single, sharded, dataset, visual, trial_seed=num_shards)
        aggregate = sharded.stats()
        expected = single.stats
        # The fleet's summed cache counters must equal the single cache's:
        # same requests, same invalidation decisions, just partitioned.
        for key in ("hits", "misses", "puts", "invalidations"):
            assert aggregate["cache"][key] == expected[key], key
        if model_name == "bprmf":
            assert aggregate["cache"]["invalidations"] == 0
    finally:
        sharded.close()


@pytest.mark.parametrize("num_shards", [2])
def test_sharded_matches_single_process_over_processes(
    models, dataset, features, num_shards
):
    """Same property through real worker processes and shared memory."""
    single, sharded, visual = _build_pair(
        "vbpr", models, dataset, features, num_shards, backend="process"
    )
    segment = sharded.segment_name
    assert segment is not None and segment_exists(segment)
    try:
        _random_interleaving(
            single, sharded, dataset, visual, trial_seed=9, steps=60
        )
    finally:
        sharded.close()
    assert not segment_exists(segment), "worker teardown leaked the segment"


def test_warm_started_shards_match_single_process(models, dataset, features):
    """Warm entries must be indistinguishable from computed entries."""
    model = models["vbpr"]
    scores = model.score_all(features=features)
    single = RecommenderService(
        model, feedback=dataset.feedback, features=np.array(features, copy=True), n=N
    )
    single.warm_start(scores)
    sharded = ShardedService.build(
        model,
        num_shards=3,
        backend="local",
        feedback=dataset.feedback,
        features=np.array(features, copy=True),
        n=N,
    )
    try:
        assert sharded.warm_start(scores) == dataset.num_users
        for user in range(dataset.num_users):
            np.testing.assert_array_equal(
                sharded.recommend(user), single.recommend(user)
            )
        # Every request above must have been served from the warm cache.
        assert sharded.stats()["cache"]["misses"] == 0
    finally:
        sharded.close()
