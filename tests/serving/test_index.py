"""Unit tests for the invalidating top-N cache."""

import numpy as np
import pytest

from repro.serving import TopNCache


def make_cache(n=3, num_items=10, seen=None):
    return TopNCache(n, num_items, seen_items=seen)


class TestBasics:
    def test_miss_then_hit(self):
        cache = make_cache()
        assert cache.get(0) is None
        cache.put(0, np.array([4, 2, 9]), np.array([3.0, 2.0, 1.0]))
        np.testing.assert_array_equal(cache.get(0), [4, 2, 9])
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        assert cache.stats.hit_rate == pytest.approx(0.5)
        assert 0 in cache and len(cache) == 1

    def test_get_returns_copy(self):
        cache = make_cache()
        cache.put(0, np.array([4, 2, 9]), np.array([3.0, 2.0, 1.0]))
        served = cache.get(0)
        served[0] = 99
        np.testing.assert_array_equal(cache.get(0), [4, 2, 9])

    def test_put_validation(self):
        cache = make_cache(n=2)
        with pytest.raises(ValueError):
            cache.put(0, np.array([1, 2, 3]), np.array([3.0, 2.0, 1.0]))  # > n
        with pytest.raises(ValueError):
            cache.put(0, np.array([1]), np.array([1.0, 2.0]))  # misaligned
        with pytest.raises(ValueError):
            cache.put(0, np.array([1, 2]), np.array([1.0, 2.0]))  # increasing
        with pytest.raises(ValueError):
            cache.put(0, np.array([1, 99]), np.array([2.0, 1.0]))  # out of range

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            TopNCache(0, 10)
        with pytest.raises(ValueError):
            TopNCache(3, 0)

    def test_n_caps_at_num_items(self):
        assert TopNCache(50, 10).n == 10

    def test_invalidate_and_clear(self):
        cache = make_cache()
        cache.put(0, np.array([1]), np.array([1.0]))
        cache.put(1, np.array([2]), np.array([1.0]))
        assert cache.invalidate([0, 5]) == 1
        assert cache.cached_users() == [1]
        cache.clear()
        assert len(cache) == 0


class TestInvalidation:
    """The fine-grained rules: head membership and threshold crossing."""

    def put_entry(self, cache, user=0):
        # head = {4, 2, 9} with scores 3 > 2 > 1; threshold = 1.
        cache.put(user, np.array([4, 2, 9]), np.array([3.0, 2.0, 1.0]))

    def test_update_below_threshold_keeps_entry(self):
        cache = make_cache()
        self.put_entry(cache)
        out = cache.apply_update([0], np.array([7]), np.array([[0.5]]))
        assert out == []
        assert 0 in cache

    def test_update_reaching_threshold_invalidates(self):
        cache = make_cache()
        self.put_entry(cache)
        out = cache.apply_update([0], np.array([7]), np.array([[1.0]]))  # tie
        assert out == [0]
        assert 0 not in cache
        assert cache.stats.invalidations == 1

    def test_update_of_head_item_invalidates_even_if_score_drops(self):
        cache = make_cache()
        self.put_entry(cache)
        out = cache.apply_update([0], np.array([9]), np.array([[-50.0]]))
        assert out == [0]

    def test_seen_item_cannot_enter(self):
        cache = make_cache(seen=[{7}])
        self.put_entry(cache)
        out = cache.apply_update([0], np.array([7]), np.array([[100.0]]))
        assert out == []
        assert 0 in cache

    def test_mixed_users(self):
        cache = make_cache()
        self.put_entry(cache, user=0)
        cache.put(1, np.array([5, 6, 8]), np.array([9.0, 8.0, 7.0]))
        # Item 7 scores 2.0 for user 0 (enters: >= 1) and 2.0 for user 1
        # (stays out: < 7).
        out = cache.apply_update([0, 1], np.array([7]), np.array([[2.0], [2.0]]))
        assert out == [0]
        assert 1 in cache and 0 not in cache

    def test_uncached_users_ignored(self):
        cache = make_cache()
        self.put_entry(cache, user=0)
        cache.invalidate([0])
        out = cache.apply_update([0], np.array([7]), np.array([[100.0]]))
        assert out == []

    def test_shape_validation(self):
        cache = make_cache()
        self.put_entry(cache)
        with pytest.raises(ValueError):
            cache.apply_update([0], np.array([7, 8]), np.array([[1.0]]))

    def test_stats_track_update_batches(self):
        cache = make_cache()
        self.put_entry(cache)
        cache.apply_update([0], np.array([7]), np.array([[0.0]]))
        assert cache.stats.update_batches == 1
        assert cache.stats.as_dict()["update_batches"] == 1
