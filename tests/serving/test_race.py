"""Runtime race detection and protocol fault injection (PR 9).

Three layers: the CRC sentinel itself (catches any write to a shard's
attached bank), race-check mode threaded through the handles/service
(normal serving must pass verification — the single-writer protocol
holds in practice, not just under lint), and the protocol fault
injector (duplicated, reordered and dropped epochs must never resurrect
stale cache entries, matching an in-order reference bitwise).
"""

import numpy as np
import pytest

from repro.serving import ShardedService
from repro.serving.sharded import (
    ArrayBank,
    FaultInjectingHandle,
    ShmRaceError,
    ShmWriteSentinel,
    build_synthetic_system,
    race_check_enabled,
)
from repro.serving.sharded.scorer import SharedScorer, compute_item_side
from repro.serving.sharded.shard import Shard
from repro.serving.sharded.worker import LocalShardHandle, ShardError


@pytest.fixture(scope="module")
def system():
    return build_synthetic_system(24, 16, feature_dim=8, seed=11)


def _local_shard(model, n=6, escalate_fraction=0.25):
    kind, arrays = compute_item_side(model)
    bank = ArrayBank.snapshot(arrays)
    scorer = SharedScorer(
        kind,
        bank,
        num_users=model.num_users,
        num_items=model.num_items,
        user_ids=np.arange(model.num_users, dtype=np.int64),
        user_factors=model.user_factors,
        visual_user_factors=model.visual_user_factors,
        escalate_fraction=escalate_fraction,
    )
    return Shard(0, scorer, n=n)


def _corrupt(bank, key="item_bias", delta=1.0):
    # Bypass the read-only flag the way a buggy native kernel could:
    # a fresh view over the same (writable) base buffer.
    view = bank[key].view()
    view.flags.writeable = True
    view.flat[0] += delta


def _update_payload(model, epoch, items, scale=1.0):
    feats = model.features[items] + scale * (epoch + 1)
    return {"epoch": epoch, "item_ids": items, "item_features": feats}


# --------------------------------------------------------------------- #
# The sentinel itself
# --------------------------------------------------------------------- #
class TestShmWriteSentinel:
    def test_untouched_bank_verifies(self, system):
        model, *_ = system
        shard = _local_shard(model)
        sentinel = ShmWriteSentinel(shard.scorer.bank)
        assert sentinel.keys()
        sentinel.verify()  # no raise

    def test_corruption_names_key_and_op(self, system):
        model, *_ = system
        shard = _local_shard(model)
        sentinel = ShmWriteSentinel(shard.scorer.bank)
        _corrupt(shard.scorer.bank, "item_bias")
        with pytest.raises(ShmRaceError, match="item_bias") as excinfo:
            sentinel.verify(op="recommend", seq=7)
        assert "op 'recommend'" in str(excinfo.value)
        assert "seq 7" in str(excinfo.value)
        assert "single-writer" in str(excinfo.value)

    def test_reverted_corruption_verifies_again(self, system):
        model, *_ = system
        shard = _local_shard(model)
        sentinel = ShmWriteSentinel(shard.scorer.bank)
        original = shard.scorer.bank["item_bias"].copy()
        _corrupt(shard.scorer.bank, "item_bias", delta=0.5)
        restore = shard.scorer.bank["item_bias"].view()
        restore.flags.writeable = True
        restore[...] = original
        sentinel.verify()  # content-identical again: CRC matches


class TestRaceCheckToggle:
    def test_explicit_wins_over_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_RACE_CHECK", "1")
        assert race_check_enabled(False) is False
        monkeypatch.delenv("REPRO_RACE_CHECK")
        assert race_check_enabled(True) is True

    def test_environment_spellings(self, monkeypatch):
        for value in ("1", "true", "YES", " on "):
            monkeypatch.setenv("REPRO_RACE_CHECK", value)
            assert race_check_enabled() is True
        for value in ("", "0", "off", "no"):
            monkeypatch.setenv("REPRO_RACE_CHECK", value)
            assert race_check_enabled() is False


# --------------------------------------------------------------------- #
# Race mode on the serving path
# --------------------------------------------------------------------- #
class TestRaceModeServing:
    def test_normal_serving_passes_verification(self, system):
        # The real single-writer assertion: recommends, epoch updates and
        # the COW dense escalation never touch the attached bank.
        model, *_ = system
        handle = LocalShardHandle(
            _local_shard(model, escalate_fraction=0.1), race_check=True
        )
        try:
            for user in range(model.num_users):
                handle.call("recommend", {"user": user})
            items = np.arange(model.num_items, dtype=np.int64)
            for epoch in (1, 2, 3):  # enough volume to force escalation
                handle.cast("update", _update_payload(model, epoch, items))
            assert handle.shard.scorer.escalated
            handle.call("stats")
        finally:
            handle.stop()

    def test_corruption_fails_the_op_that_exposed_it(self, system):
        model, *_ = system
        handle = LocalShardHandle(_local_shard(model), race_check=True)
        try:
            handle.call("ping")
            _corrupt(handle.shard.scorer.bank)
            with pytest.raises(ShmRaceError, match="op 'ping'"):
                handle.call("ping")
        finally:
            handle.stop()

    def test_service_build_threads_race_check(self, system):
        model, item_classes, class_names, counts = system
        service = ShardedService.build(
            model, num_shards=2, backend="local", n=6, race_check=True
        )
        try:
            assert len(service.ping()) == 2
            reference = ShardedService.build(
                model, num_shards=2, backend="local", n=6, race_check=False
            )
            try:
                for user in range(model.num_users):
                    np.testing.assert_array_equal(
                        service.recommend(user), reference.recommend(user)
                    )
            finally:
                reference.close()
        finally:
            service.close()


# --------------------------------------------------------------------- #
# Typed protocol errors
# --------------------------------------------------------------------- #
class TestTypedShardError:
    def test_from_reply_carries_protocol_context(self):
        error = ShardError.from_reply(
            3,
            {"op": "update", "seq": 12, "kind": "ValueError", "message": "bad epoch"},
        )
        assert (error.shard_id, error.op, error.seq, error.kind) == (
            3, "update", 12, "ValueError",
        )
        assert "shard 3 op update (seq 12): ValueError: bad epoch" in str(error)

    def test_legacy_string_reply_still_renders(self):
        error = ShardError.from_reply(1, "kaboom", op="stats")
        assert error.kind is None and error.op == "stats"
        assert "shard 1 op stats: kaboom" in str(error)

    def test_local_handle_raises_typed_errors(self, system):
        model, *_ = system
        handle = LocalShardHandle(_local_shard(model))
        try:
            with pytest.raises(ShardError) as excinfo:
                handle.call("update", _update_payload(model, 0, np.array([0])))
            assert excinfo.value.kind == "ValueError"
            assert excinfo.value.op == "update"
            assert excinfo.value.shard_id == 0
        finally:
            handle.stop()
        with pytest.raises(ShardError) as excinfo:
            handle.call("stats")
        assert excinfo.value.kind == "HandleStopped"


# --------------------------------------------------------------------- #
# Protocol fault injection
# --------------------------------------------------------------------- #
class TestFaultInjection:
    def _reference(self, model, epochs, items):
        shard = _local_shard(model)
        for user in range(model.num_users):
            shard.recommend(user)
        for epoch in epochs:
            payload = _update_payload(model, epoch, items)
            shard.submit_update(
                payload["epoch"], payload["item_ids"], payload["item_features"]
            )
        return {u: shard.recommend(u).copy() for u in range(model.num_users)}

    def test_duplicated_epochs_never_double_apply(self, system):
        model, *_ = system
        items = np.array([2, 5, 9])
        expected = self._reference(model, (1, 2, 3), items)

        handle = FaultInjectingHandle(
            LocalShardHandle(_local_shard(model)), duplicate=True
        )
        for user in range(model.num_users):
            handle.call("recommend", {"user": user})
        for epoch in (1, 2, 3):
            handle.cast("update", _update_payload(model, epoch, items))
        assert handle.injected["duplicated"] == 3
        shard = handle.inner.shard
        assert shard.applied_epoch == 3 and shard.stale_updates == 3
        for user in range(model.num_users):
            np.testing.assert_array_equal(
                handle.call("recommend", {"user": user}), expected[user]
            )

    def test_reordered_epochs_buffer_and_apply_in_order(self, system):
        model, *_ = system
        items = np.array([0, 7])
        expected = self._reference(model, (1, 2, 3, 4), items)

        handle = FaultInjectingHandle(
            LocalShardHandle(_local_shard(model)), delay_epochs=(2, 3)
        )
        for user in range(model.num_users):
            handle.call("recommend", {"user": user})
        for epoch in (1, 2, 3, 4):
            handle.cast("update", _update_payload(model, epoch, items))
        shard = handle.inner.shard
        # 2 and 3 are held back: only 1 applied, 4 buffered.
        assert shard.applied_epoch == 1 and shard.pending_epochs == [4]
        # Released in reverse (3 before 2): the gap fills, all apply.
        assert handle.release_delayed(reverse=True) == 2
        assert shard.applied_epoch == 4 and not shard.pending_epochs
        for user in range(model.num_users):
            np.testing.assert_array_equal(
                handle.call("recommend", {"user": user}), expected[user]
            )

    def test_dropped_epoch_delivered_late_cannot_resurrect_state(self, system):
        model, *_ = system
        items = np.array([1, 3, 8])
        expected = self._reference(model, (1, 2, 3), items)

        handle = FaultInjectingHandle(
            LocalShardHandle(_local_shard(model)), drop_epochs=(2,)
        )
        for user in range(model.num_users):
            handle.call("recommend", {"user": user})
        for epoch in (1, 2, 3):
            handle.cast("update", _update_payload(model, epoch, items))
        shard = handle.inner.shard
        assert shard.applied_epoch == 1 and shard.pending_epochs == [3]

        # The dropped epoch finally arrives: the gap fills in order.
        assert handle.deliver_dropped() == 1
        assert shard.applied_epoch == 3
        served = {u: handle.call("recommend", {"user": u}) for u in range(model.num_users)}
        for user, expect in expected.items():
            np.testing.assert_array_equal(served[user], expect)

        # A stale duplicate of epoch 2 after the world moved on must be
        # dropped outright — nothing served may change.
        stale_before = shard.stale_updates
        handle.inner.cast("update", _update_payload(model, 2, items))
        assert shard.stale_updates == stale_before + 1
        assert shard.applied_epoch == 3
        for user, expect in expected.items():
            np.testing.assert_array_equal(
                handle.call("recommend", {"user": user}), expect
            )

    def test_passthrough_and_counters(self, system):
        model, *_ = system
        handle = FaultInjectingHandle(LocalShardHandle(_local_shard(model)))
        assert handle.alive()
        assert handle.call("ping")["shard_id"] == 0
        handle.cast("stats")  # non-update casts pass straight through
        assert handle.flush() == []
        assert handle.injected == {"duplicated": 0, "delayed": 0, "dropped": 0}
        handle.stop()
        assert not handle.alive()
