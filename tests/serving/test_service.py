"""Unit tests for the RecommenderService facade and the CHR monitor."""

import numpy as np
import pytest

from repro.core import TAaMRPipeline
from repro.data import tiny_dataset
from repro.features import ClassifierConfig, FeatureExtractor, train_catalog_classifier
from repro.recommenders import BPRMF, BPRMFConfig, VBPR, VBPRConfig
from repro.serving import RecommenderService, RollingChrMonitor


@pytest.fixture(scope="module")
def pipeline():
    ds = tiny_dataset(seed=0, image_size=16)
    model, _ = train_catalog_classifier(
        ds.images,
        ds.item_categories,
        ds.num_categories,
        widths=(8,),
        blocks_per_stage=(1,),
        config=ClassifierConfig(epochs=6, batch_size=32, learning_rate=0.08, seed=0),
    )
    extractor = FeatureExtractor(model).fit(ds.images)
    features = extractor.transform(ds.images)
    vbpr = VBPR(ds.num_users, ds.num_items, features, VBPRConfig(epochs=5, seed=0)).fit(
        ds.feedback
    )
    return TAaMRPipeline(ds, extractor, vbpr, cutoff=10)


@pytest.fixture()
def service(pipeline):
    return RecommenderService.from_pipeline(pipeline, n=10)


class TestRecommend:
    def test_matches_offline_top_n(self, pipeline, service):
        ds = pipeline.dataset
        expected = pipeline.recommender.top_n(
            10, feedback=ds.feedback, scores=pipeline.clean_scores
        )
        for user in (0, 3, 11, 39):
            np.testing.assert_array_equal(service.recommend(user), expected[user])

    def test_cached_second_request(self, service):
        first = service.recommend(5)
        second = service.recommend(5)
        np.testing.assert_array_equal(first, second)
        assert service.stats["hits"] == 1
        assert service.stats["misses"] == 1

    def test_prefix_for_smaller_n(self, service):
        full = service.recommend(2)
        np.testing.assert_array_equal(service.recommend(2, n=3), full[:3])

    def test_excludes_train_positives(self, pipeline, service):
        ds = pipeline.dataset
        for user in range(ds.num_users):
            served = set(service.recommend(user).tolist())
            assert not served & set(ds.feedback.train_items[user].tolist())

    def test_n_validation(self, service):
        with pytest.raises(ValueError):
            service.recommend(0, n=0)
        with pytest.raises(ValueError):
            service.recommend(0, n=service.n + 1)
        with pytest.raises(ValueError):
            service.recommend(-1)

    def test_recommend_batch(self, pipeline, service):
        block = service.recommend_batch([4, 7], n=5)
        assert block.shape == (2, 5)
        np.testing.assert_array_equal(block[0], service.recommend(4, n=5))


class TestFeaturePush:
    def test_push_changes_scores_and_lists_consistently(self, pipeline, service):
        ds = pipeline.dataset
        users = list(range(ds.num_users))
        for user in users:
            service.recommend(user)

        rng = np.random.default_rng(3)
        item_ids = np.array([1, 17, 33])
        new_features = pipeline.clean_features[item_ids] + rng.normal(
            0, 5.0, (3, pipeline.clean_features.shape[1])
        )
        report = service.push_item_features(item_ids, new_features)
        assert report.scores_changed
        assert report.cached_users == ds.num_users

        shadow = pipeline.clean_features.copy()
        shadow[item_ids] = new_features
        expected = pipeline.recommender.top_n(
            10,
            feedback=ds.feedback,
            scores=pipeline.recommender.score_all(features=shadow),
        )
        for user in users:
            np.testing.assert_array_equal(service.recommend(user), expected[user])

    def test_push_attacked_images_roundtrip(self, pipeline):
        """Pushing the *clean* images must be a no-op on every served list."""
        service = RecommenderService.from_pipeline(pipeline, n=10)
        ds = pipeline.dataset
        before = {user: service.recommend(user) for user in range(8)}
        item_ids = np.arange(5)
        report = service.push_attacked_images(item_ids, ds.images[item_ids])
        assert report.scores_changed  # extraction ran, scores recomputed
        for user, served in before.items():
            np.testing.assert_array_equal(service.recommend(user), served)

    def test_push_requires_extractor(self, pipeline):
        service = RecommenderService(
            pipeline.recommender,
            feedback=pipeline.dataset.feedback,
            features=pipeline.clean_features,
        )
        with pytest.raises(RuntimeError):
            service.push_attacked_images([0], pipeline.dataset.images[:1])

    def test_bprmf_service_is_attack_immune(self, pipeline):
        ds = pipeline.dataset
        model = BPRMF(ds.num_users, ds.num_items, BPRMFConfig(epochs=3, seed=0)).fit(
            ds.feedback
        )
        service = RecommenderService(model, feedback=ds.feedback, n=10)
        before = service.recommend(2)
        report = service.push_item_features([0], np.ones((1, 7)))
        assert not report.scores_changed
        assert report.num_invalidated == 0
        np.testing.assert_array_equal(service.recommend(2), before)
        assert service.stats["hits"] == 1


class TestMonitor:
    def test_rolling_snapshot_sums_to_100(self, service):
        for user in range(20):
            service.recommend(user)
        snapshot = service.monitor.snapshot()
        assert sum(snapshot.values()) == pytest.approx(100.0)
        assert service.monitor.observed == 20

    def test_window_eviction(self):
        monitor = RollingChrMonitor(np.array([0, 1]), ["a", "b"], window=2)
        monitor.observe(np.array([0]))
        monitor.observe(np.array([0]))
        monitor.observe(np.array([1]))  # evicts the first
        assert monitor.chr_percent("a") == pytest.approx(50.0)
        assert monitor.chr_percent("b") == pytest.approx(50.0)

    def test_empty_snapshot(self):
        monitor = RollingChrMonitor(np.array([0]), ["a"], window=4)
        assert monitor.snapshot() == {"a": 0.0}
        assert monitor.chr_percent("a") == 0.0

    def test_validation(self, pipeline):
        with pytest.raises(ValueError):
            RollingChrMonitor(np.array([0]), ["a"], window=0)
        with pytest.raises(ValueError):
            RollingChrMonitor(np.array([5]), ["a"], window=2)
        with pytest.raises(ValueError):
            RecommenderService(
                pipeline.recommender,
                features=pipeline.clean_features,
                item_classes=pipeline.item_classes,
                class_names=None,
            )


class TestUniverseValidation:
    def test_mismatched_feedback_rejected(self, pipeline):
        other = tiny_dataset(seed=1, image_size=16)
        model = BPRMF(3, 5, BPRMFConfig(epochs=1))
        with pytest.raises(ValueError):
            RecommenderService(model, feedback=other.feedback)
