"""Unit coverage for the sharded serving tier.

Epoch-ordered update application (out-of-order delivery cannot
resurrect stale cache entries), shared-memory bundle round-trips and
teardown, partition invariance, derived load-generator streams,
failover to the MostPop fallback, and the block-shaped warm-start
slice on :class:`RecommenderService`.
"""

import numpy as np
import pytest

from repro.rng import derive_rng, rng_from_seed
from repro.serving import (
    MostPopFallback,
    RecommenderService,
    ShardedService,
    ZipfLoadGenerator,
)
from repro.serving.sharded import (
    ArrayBank,
    SharedArrayBundle,
    UserPartition,
    attach_bundle,
    build_synthetic_system,
    segment_exists,
)
from repro.serving.sharded.shard import Shard
from repro.serving.sharded.scorer import SharedScorer, compute_item_side
from repro.serving.sharded.worker import LocalShardHandle, ShardError
from repro.telemetry import MetricsRegistry, install_metrics


def _local_shard(model, user_ids, n=6, max_pending=8):
    kind, arrays = compute_item_side(model)
    bank = ArrayBank.snapshot(arrays)
    scorer = SharedScorer(
        kind,
        bank,
        num_users=model.num_users,
        num_items=model.num_items,
        user_ids=np.asarray(user_ids, dtype=np.int64),
        user_factors=model.user_factors[user_ids],
        visual_user_factors=model.visual_user_factors[user_ids],
    )
    return Shard(0, scorer, n=n, max_pending=max_pending)


@pytest.fixture(scope="module")
def system():
    return build_synthetic_system(40, 30, feature_dim=10, seed=7)


# --------------------------------------------------------------------- #
# Epoch ordering
# --------------------------------------------------------------------- #
class TestEpochOrdering:
    def test_out_of_order_delivery_cannot_resurrect_stale_entries(self, system):
        model, *_ = system
        shard = _local_shard(model, np.arange(model.num_users))
        rng = rng_from_seed(21)
        items = np.array([3, 8])
        feats_a = model.features[items] + rng.normal(0, 2.0, (2, model.feature_dim))
        feats_b = model.features[items] + rng.normal(0, 2.0, (2, model.feature_dim))

        baseline = {u: shard.recommend(u).copy() for u in range(model.num_users)}

        # Epoch 2 arrives first: it must be BUFFERED, not applied — an
        # eager application followed by the late epoch 1 would re-score
        # with older features and resurrect pre-attack lists.
        report = shard.submit_update(2, items, feats_b)
        assert report.buffered and not report.applied_epochs
        assert shard.applied_epoch == 0 and shard.pending_epochs == [2]
        for u in range(model.num_users):
            np.testing.assert_array_equal(shard.recommend(u), baseline[u])

        # Epoch 1 fills the gap: both apply, in order, atomically.
        report = shard.submit_update(1, items, feats_a)
        assert report.applied_epochs == [1, 2]
        assert shard.applied_epoch == 2 and not shard.pending_epochs
        after = {u: shard.recommend(u).copy() for u in range(model.num_users)}

        # In-order ground truth on a fresh shard.
        ordered = _local_shard(model, np.arange(model.num_users))
        for u in range(model.num_users):
            ordered.recommend(u)
        ordered.submit_update(1, items, feats_a)
        ordered.submit_update(2, items, feats_b)
        for u in range(model.num_users):
            np.testing.assert_array_equal(after[u], ordered.recommend(u))

        # A replayed stale epoch is dropped outright: no invalidation,
        # no rescore, nothing served changes.
        stats_before = shard.index.stats.as_dict()
        report = shard.submit_update(1, items, feats_a)
        assert report.stale and shard.stale_updates == 1
        assert shard.applied_epoch == 2
        assert shard.index.stats.as_dict()["invalidations"] == (
            stats_before["invalidations"]
        )
        for u in range(model.num_users):
            np.testing.assert_array_equal(shard.recommend(u), after[u])

    def test_duplicate_pending_epoch_is_dropped(self, system):
        model, *_ = system
        shard = _local_shard(model, np.arange(model.num_users))
        items = np.array([1])
        feats = model.features[items] + 1.0
        assert shard.submit_update(5, items, feats).buffered
        assert shard.submit_update(5, items, feats).stale

    def test_pending_backlog_is_bounded(self, system):
        model, *_ = system
        shard = _local_shard(model, np.arange(model.num_users), max_pending=3)
        items = np.array([0])
        feats = model.features[items]
        for epoch in (2, 3, 4):  # epoch 1 never arrives: gap persists
            shard.submit_update(epoch, items, feats)
        with pytest.raises(RuntimeError, match="backlog"):
            shard.submit_update(5, items, feats)


# --------------------------------------------------------------------- #
# Shared memory
# --------------------------------------------------------------------- #
class TestSharedMemory:
    def test_bundle_round_trip_and_teardown(self):
        rng = rng_from_seed(3)
        arrays = {
            "a": rng.normal(0, 1, (7, 5)),
            "b": rng.integers(0, 9, size=11).astype(np.int64),
            "c": rng.normal(0, 1, 13),
        }
        bundle = SharedArrayBundle(arrays)
        segment = bundle.manifest.segment
        assert segment_exists(segment)
        bank = attach_bundle(bundle.manifest)
        for key, expected in arrays.items():
            np.testing.assert_array_equal(bank[key], expected)
            assert not bank[key].flags.writeable
        bank.close()
        with pytest.raises(KeyError):
            bank["a"]  # stale handles fail loudly, not by segfault
        bundle.release()
        assert not segment_exists(segment)
        bundle.release()  # idempotent

    def test_offsets_are_aligned(self):
        arrays = {"x": np.ones(3), "y": np.ones((2, 2)), "z": np.ones(1)}
        bundle = SharedArrayBundle(arrays)
        try:
            for spec in bundle.manifest.arrays:
                assert spec.offset % 64 == 0
        finally:
            bundle.release()


# --------------------------------------------------------------------- #
# Partitioning + load generation
# --------------------------------------------------------------------- #
class TestPartition:
    def test_users_of_covers_universe_disjointly(self):
        partition = UserPartition(101, 4)
        seen = np.concatenate([partition.users_of(s) for s in range(4)])
        assert sorted(seen.tolist()) == list(range(101))

    def test_split_stream_is_shard_count_invariant(self):
        generator = ZipfLoadGenerator(200, exponent=1.1, seed=4, stream="t.split")
        stream = generator.sample(500)
        per_user = {
            u: np.flatnonzero(stream == u) for u in np.unique(stream)
        }
        for num_shards in (1, 2, 4, 8):
            partition = UserPartition(200, num_shards)
            substreams = partition.split_stream(stream)
            assert sum(s.size for s in substreams) == stream.size
            for shard_id, sub in enumerate(substreams):
                assert np.all(sub % num_shards == shard_id)
                # Each user's request subsequence survives the split
                # in order — the property the equivalence suite leans on.
                for u in np.unique(sub):
                    assert np.count_nonzero(sub == u) == per_user[u].size


class TestLoadGeneratorStreams:
    def test_default_stream_matches_legacy_sequences(self):
        a = ZipfLoadGenerator(64, exponent=1.1, seed=9).sample(100)
        b = ZipfLoadGenerator(64, exponent=1.1, seed=9).sample(100)
        np.testing.assert_array_equal(a, b)

    def test_named_streams_are_independent_and_reproducible(self):
        base = ZipfLoadGenerator(64, seed=9, stream="shard.0").sample(100)
        again = ZipfLoadGenerator(64, seed=9, stream="shard.0").sample(100)
        other = ZipfLoadGenerator(64, seed=9, stream="shard.1").sample(100)
        np.testing.assert_array_equal(base, again)
        assert not np.array_equal(base, other)
        # And the derivation is exactly repro.rng.derive_rng, not an
        # ad-hoc reimplementation.
        assert derive_rng(9, "shard.0").permutation(64).tolist() != (
            derive_rng(9, "shard.1").permutation(64).tolist()
        )


# --------------------------------------------------------------------- #
# Failover
# --------------------------------------------------------------------- #
class TestFailover:
    def test_mostpop_fallback_skips_seen(self):
        counts = np.array([5.0, 9.0, 1.0, 9.0, 3.0])
        fallback = MostPopFallback(counts, seen_items={0: {1}, 1: set()})
        np.testing.assert_array_equal(fallback.recommend(0, 3), [3, 0, 4])
        np.testing.assert_array_equal(fallback.recommend(1, 3), [1, 3, 0])

    def test_dead_shard_fails_over_to_mostpop(self, system):
        model, item_classes, class_names, counts = system
        registry = MetricsRegistry()
        previous = install_metrics(registry)
        service = ShardedService.build(
            model,
            num_shards=2,
            backend="local",
            item_classes=item_classes,
            class_names=class_names,
            fallback_counts=counts,
            n=6,
        )
        try:
            healthy_list = service.recommend(2).copy()  # shard 0 user
            service.router.handles[1].stop()  # kill shard 1 under the router
            degraded = service.recommend(1)  # shard 1 user -> fallback
            expected = np.argsort(-counts, kind="stable")[:6]
            np.testing.assert_array_equal(degraded, expected)
            assert service.router.healthy_shards() == [0]
            assert service.router.failovers == 1
            # Healthy shards keep serving their own users untouched.
            np.testing.assert_array_equal(service.recommend(2), healthy_list)
            # Pushes skip the dead shard without raising; repeat requests
            # keep hitting the fallback but failover fires only once.
            service.push_item_features(
                np.array([0]), model.features[[0]] + 0.1
            )
            service.flush()
            service.recommend(1)
            assert service.router.failovers == 1
            snapshot = registry.snapshot()
            assert snapshot["serving.shard_failover"]["value"] == 1
            assert snapshot["serving.fallback.requests"]["value"] == 2
            aggregate = service.stats()
            assert aggregate["unhealthy_shards"] == 1
            assert aggregate["fallback_requests"] == 2
        finally:
            service.close()
            install_metrics(previous)

    def test_unhealthy_shard_without_fallback_raises(self, system):
        model, *_ = system
        service = ShardedService.build(model, num_shards=2, backend="local", n=6)
        try:
            service.router.handles[0].stop()
            with pytest.raises(ShardError, match="unhealthy"):
                service.recommend(0)
        finally:
            service.close()


# --------------------------------------------------------------------- #
# Warm-start slice (RecommenderService satellite)
# --------------------------------------------------------------------- #
class TestWarmStartSlice:
    def test_block_shaped_scores_prefill_only_the_slice(self, system):
        model, *_ = system
        full = model.score_all()
        user_ids = np.array([1, 5, 9, 33])

        sliced = RecommenderService(model, n=6)
        assert sliced.warm_start(full[user_ids], user_ids=user_ids) == 4
        reference = RecommenderService(model, n=6)
        reference.warm_start(full)
        for user in user_ids:
            np.testing.assert_array_equal(
                sliced.recommend(int(user)), reference.recommend(int(user))
            )
        stats = sliced.stats
        assert stats["hits"] == 4 and stats["misses"] == 0

    def test_shape_mismatch_is_rejected(self, system):
        model, *_ = system
        service = RecommenderService(model, n=6)
        with pytest.raises(ValueError, match="row-aligned"):
            service.warm_start(
                np.zeros((3, model.num_items)), user_ids=np.array([0, 1])
            )


class TestLocalHandle:
    def test_local_handle_wraps_shard_errors(self, system):
        model, *_ = system
        shard = _local_shard(model, np.arange(0, model.num_users, 2))
        handle = LocalShardHandle(shard)
        with pytest.raises(ShardError, match="not owned"):
            handle.call("recommend", {"user": 1})  # odd user, even shard
        handle.stop()
        with pytest.raises(ShardError, match="stopped"):
            handle.call("stats")
