"""Unit tests for the load generator and the smoke serving benchmark."""

import json

import numpy as np
import pytest

from repro.serving import (
    PhaseStats,
    ZipfLoadGenerator,
    format_serving_report,
    measure_phase,
    run_serving_bench,
)


class TestZipfLoadGenerator:
    def test_deterministic_given_seed(self):
        a = ZipfLoadGenerator(50, exponent=1.1, seed=3).sample(200)
        b = ZipfLoadGenerator(50, exponent=1.1, seed=3).sample(200)
        np.testing.assert_array_equal(a, b)

    def test_stream_advances(self):
        gen = ZipfLoadGenerator(50, seed=0)
        assert not np.array_equal(gen.sample(100), gen.sample(100))

    def test_skewed_traffic(self):
        gen = ZipfLoadGenerator(100, exponent=1.5, seed=0)
        users = gen.sample(5000)
        counts = np.bincount(users, minlength=100)
        # The hottest decile should dwarf the coldest decile.
        counts = np.sort(counts)
        assert counts[-10:].sum() > 5 * counts[:10].sum()

    def test_zero_exponent_is_uniform(self):
        gen = ZipfLoadGenerator(10, exponent=0.0, seed=0)
        np.testing.assert_allclose(gen.probabilities, np.full(10, 0.1))

    def test_all_users_in_range(self):
        users = ZipfLoadGenerator(7, seed=1).sample(500)
        assert users.min() >= 0 and users.max() < 7

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfLoadGenerator(0)
        with pytest.raises(ValueError):
            ZipfLoadGenerator(5, exponent=-1.0)
        with pytest.raises(ValueError):
            ZipfLoadGenerator(5).sample(0)


class TestMeasurePhase:
    def test_profile_shape(self):
        class FakeService:
            def recommend(self, user):
                return np.array([user])

        stats = measure_phase(FakeService(), "cold", np.arange(32))
        assert isinstance(stats, PhaseStats)
        assert stats.requests == 32
        assert stats.throughput_rps > 0
        assert stats.p50_ms <= stats.p95_ms <= stats.p99_ms
        payload = stats.as_dict()
        assert set(payload) == {
            "requests", "wall_s", "throughput_rps", "p50_ms", "p95_ms", "p99_ms",
        }


class TestSmokeBench:
    """The --smoke path is cheap enough for the default test tier."""

    @pytest.fixture(scope="class")
    def payload(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("bench") / "BENCH_serving.json"
        payload = run_serving_bench(smoke=True, out_path=str(out))
        with open(out, encoding="utf-8") as handle:
            assert json.load(handle) == payload
        return payload

    def test_phases_present(self, payload):
        assert set(payload["phases"]) == {
            "cold", "warm_cache", "post_invalidation", "defended",
        }
        for phase in payload["phases"].values():
            assert phase["requests"] > 0
            assert phase["throughput_rps"] > 0
            assert phase["p50_ms"] <= phase["p95_ms"] <= phase["p99_ms"]

    def test_attack_push_recorded(self, payload):
        inv = payload["invalidation"]
        assert inv["scores_changed"] is True
        assert 0 <= inv["invalidated_users"] <= inv["cached_users"]
        # Undefended push + defended clean push + defended attacked push
        # (the last one skips the scorer when fully quarantined).
        assert 2 <= payload["cache"]["feature_updates"] <= 3

    def test_defended_phase_reports_screen(self, payload):
        defended = payload["phases"]["defended"]
        assert 0.0 <= defended["detection_rate"] <= 1.0
        assert "added_p95_ms" in defended
        screen = payload["screen"]
        assert screen["attacked_items"] > 0
        assert screen["quarantined_items"] == round(
            screen["detection_rate"] * screen["attacked_items"]
        )
        assert 0.0 <= screen["clean_false_positive_rate"] <= 1.0
        assert screen["threshold"] > 0
        assert screen["push_ms_defended"] > 0 and screen["push_ms_undefended"] > 0

    def test_chr_monitor_tracked(self, payload):
        chr_info = payload["chr_monitor"]
        assert chr_info["category"] == "sock"
        assert chr_info["rolling_percent_before_attack"] >= 0.0
        assert chr_info["rolling_percent_after_attack"] >= 0.0

    def test_report_formats(self, payload):
        text = format_serving_report(payload)
        assert "cold" in text and "warm_cache" in text and "post_invalidation" in text
        assert "defended" in text and "quarantined" in text
        assert "rolling CHR" in text

    def test_invalid_requests(self):
        with pytest.raises(ValueError):
            run_serving_bench(requests=0, smoke=True)
