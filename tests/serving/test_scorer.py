"""Unit tests for the incremental batched scorer."""

import numpy as np
import pytest

from repro.data import tiny_dataset
from repro.recommenders import (
    AMR,
    AMRConfig,
    BPRMF,
    BPRMFConfig,
    MostPop,
    VBPR,
    VBPRConfig,
)
from repro.serving import IncrementalScorer


@pytest.fixture(scope="module")
def dataset():
    return tiny_dataset(seed=0, image_size=16)


@pytest.fixture(scope="module")
def features(dataset):
    rng = np.random.default_rng(1)
    base = rng.normal(0, 1, (dataset.num_categories, 12))
    return base[dataset.item_categories] + rng.normal(0, 0.3, (dataset.num_items, 12))


@pytest.fixture(scope="module")
def vbpr(dataset, features):
    return VBPR(
        dataset.num_users, dataset.num_items, features, VBPRConfig(epochs=3, seed=0)
    ).fit(dataset.feedback)


@pytest.fixture(scope="module")
def bprmf(dataset):
    return BPRMF(
        dataset.num_users, dataset.num_items, BPRMFConfig(epochs=3, seed=0)
    ).fit(dataset.feedback)


class TestConstruction:
    def test_requires_fitted(self, dataset, features):
        model = VBPR(dataset.num_users, dataset.num_items, features)
        with pytest.raises(RuntimeError):
            IncrementalScorer(model)

    def test_rejects_unknown_model(self):
        with pytest.raises(TypeError):
            IncrementalScorer(object())

    def test_rejects_features_for_nonvisual(self, bprmf, features):
        with pytest.raises(ValueError):
            IncrementalScorer(bprmf, features=features)

    def test_rejects_wrong_feature_shape(self, vbpr):
        with pytest.raises(ValueError):
            IncrementalScorer(vbpr, features=np.zeros((3, 12)))

    def test_snapshot_isolated_from_caller(self, vbpr, features):
        feats = np.array(features, copy=True)
        scorer = IncrementalScorer(vbpr, features=feats)
        feats[0, 0] += 100.0
        assert scorer.features[0, 0] != feats[0, 0]

    def test_features_view_readonly(self, vbpr):
        scorer = IncrementalScorer(vbpr)
        with pytest.raises(ValueError):
            scorer.features[0, 0] = 1.0

    def test_nonvisual_has_no_features(self, bprmf):
        with pytest.raises(AttributeError):
            IncrementalScorer(bprmf).features


class TestScoring:
    def test_block_matches_score_all_vbpr(self, vbpr):
        scorer = IncrementalScorer(vbpr)
        users = [0, 5, 17]
        np.testing.assert_allclose(
            scorer.score_block(users), vbpr.score_all()[users], rtol=1e-10
        )

    def test_block_matches_score_all_bprmf(self, bprmf):
        scorer = IncrementalScorer(bprmf)
        np.testing.assert_allclose(
            scorer.score_block([2, 3]), bprmf.score_all()[[2, 3]], rtol=1e-10
        )

    def test_block_matches_score_all_mostpop(self, dataset):
        model = MostPop(dataset.num_users, dataset.num_items).fit(dataset.feedback)
        scorer = IncrementalScorer(model)
        np.testing.assert_allclose(
            scorer.score_block([1, 4]), model.score_all()[[1, 4]]
        )
        np.testing.assert_allclose(
            scorer.score_items([1], [3, 8]), model.score_all()[[1]][:, [3, 8]]
        )

    def test_score_items_matches_columns(self, vbpr):
        scorer = IncrementalScorer(vbpr)
        full = scorer.score_block([4, 9])
        cols = scorer.score_items([4, 9], [0, 7, 31])
        np.testing.assert_allclose(cols, full[:, [0, 7, 31]], rtol=1e-12)

    def test_invalid_users_rejected(self, vbpr):
        scorer = IncrementalScorer(vbpr)
        with pytest.raises(ValueError):
            scorer.score_block([vbpr.num_users])
        with pytest.raises(ValueError):
            scorer.score_block([-1])

    def test_invalid_items_rejected(self, vbpr):
        scorer = IncrementalScorer(vbpr)
        with pytest.raises(ValueError):
            scorer.score_items([0], [vbpr.num_items])
        with pytest.raises(ValueError):
            scorer.score_items([0], [])


class TestUpdates:
    def test_update_matches_full_rescore(self, dataset, vbpr, features):
        scorer = IncrementalScorer(vbpr)
        rng = np.random.default_rng(7)
        item_ids = np.array([3, 40, 41])
        new = rng.normal(0, 1, (3, features.shape[1]))
        assert scorer.update_item_features(item_ids, new) is True

        shadow = np.array(features, copy=True)
        shadow[item_ids] = new
        expected = vbpr.score_all(features=shadow)
        users = np.arange(dataset.num_users)
        np.testing.assert_allclose(scorer.score_block(users), expected, rtol=1e-10)

    def test_untouched_columns_bit_identical(self, vbpr, features):
        scorer = IncrementalScorer(vbpr)
        before = scorer.score_block([0])
        scorer.update_item_features([10], np.ones((1, features.shape[1])))
        after = scorer.score_block([0])
        untouched = np.delete(np.arange(vbpr.num_items), 10)
        np.testing.assert_array_equal(before[:, untouched], after[:, untouched])

    def test_nonvisual_update_is_noop(self, bprmf):
        scorer = IncrementalScorer(bprmf)
        before = scorer.score_block([0, 1])
        assert scorer.update_item_features([5], np.ones((1, 99))) is False
        assert scorer.feature_updates == 1
        np.testing.assert_array_equal(scorer.score_block([0, 1]), before)

    def test_amr_is_supported(self, dataset, features):
        model = AMR(
            dataset.num_users,
            dataset.num_items,
            features,
            AMRConfig(epochs=3, pretrain_epochs=1, seed=0),
        ).fit(dataset.feedback)
        scorer = IncrementalScorer(model)
        assert scorer.is_visual
        np.testing.assert_allclose(
            scorer.score_block([0]), model.score_all()[[0]], rtol=1e-10
        )

    def test_update_validation(self, vbpr, features):
        scorer = IncrementalScorer(vbpr)
        with pytest.raises(ValueError):
            scorer.update_item_features([0], np.ones((2, features.shape[1])))
        with pytest.raises(ValueError):
            scorer.update_item_features([vbpr.num_items], np.ones((1, features.shape[1])))
        bad = np.full((1, features.shape[1]), np.nan)
        with pytest.raises(ValueError):
            scorer.update_item_features([0], bad)
