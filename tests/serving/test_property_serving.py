"""Property-style cache-correctness tests.

The serving layer's contract: after *any* interleaving of
``recommend`` and ``update_item_features`` calls, every served top-N
list equals a brute-force recompute from scratch — ``score_all`` over
the current feature state, seen-item masking, full argpartition — as
if no cache existed.  Seeded random interleavings exercise the
threshold bookkeeping (entries kept across irrelevant updates, dropped
exactly when a score change can cross the head boundary) on all three
recommenders of the paper; BPR-MF doubles as the attack-immune control
whose cache must *never* be invalidated by feature pushes.
"""

import numpy as np
import pytest

from repro.data import tiny_dataset
from repro.recommenders import (
    AMR,
    AMRConfig,
    BPRMF,
    BPRMFConfig,
    VBPR,
    VBPRConfig,
)
from repro.serving import RecommenderService

N = 10
FEATURE_DIM = 12


@pytest.fixture(scope="module")
def dataset():
    return tiny_dataset(seed=0, image_size=16)


@pytest.fixture(scope="module")
def features(dataset):
    rng = np.random.default_rng(11)
    base = rng.normal(0, 1, (dataset.num_categories, FEATURE_DIM))
    return base[dataset.item_categories] + rng.normal(
        0, 0.3, (dataset.num_items, FEATURE_DIM)
    )


def build_model(name, dataset, features):
    if name == "bprmf":
        return BPRMF(
            dataset.num_users, dataset.num_items, BPRMFConfig(epochs=4, seed=0)
        ).fit(dataset.feedback)
    if name == "vbpr":
        return VBPR(
            dataset.num_users,
            dataset.num_items,
            features,
            VBPRConfig(epochs=4, seed=0),
        ).fit(dataset.feedback)
    return AMR(
        dataset.num_users,
        dataset.num_items,
        features,
        AMRConfig(epochs=4, pretrain_epochs=2, seed=0),
    ).fit(dataset.feedback)


def brute_force_top_n(model, dataset, feature_state):
    """Offline ground truth: full matrix from the current features."""
    if feature_state is None:  # non-visual model
        scores = model.score_all()
    else:
        scores = model.score_all(features=feature_state)
    return model.top_n(N, feedback=dataset.feedback, scores=scores)


@pytest.mark.parametrize("model_name", ["bprmf", "vbpr", "amr"])
@pytest.mark.parametrize("trial_seed", [0, 1, 2])
def test_interleaved_serving_matches_brute_force(
    dataset, features, model_name, trial_seed
):
    model = build_model(model_name, dataset, features)
    visual = model_name != "bprmf"
    service = RecommenderService(
        model,
        feedback=dataset.feedback,
        features=np.array(features, copy=True) if visual else None,
        n=N,
    )
    feature_state = np.array(features, copy=True) if visual else None
    truth = brute_force_top_n(model, dataset, feature_state)

    rng = np.random.default_rng(100 * trial_seed + 7)
    for step in range(120):
        if rng.random() < 0.25:
            # Push new features for a random item batch.
            count = int(rng.integers(1, 4))
            item_ids = rng.choice(dataset.num_items, size=count, replace=False)
            new_features = rng.normal(0, rng.uniform(0.3, 3.0), (count, FEATURE_DIM))
            service.push_item_features(item_ids, new_features)
            if visual:
                feature_state[item_ids] = new_features
                truth = brute_force_top_n(model, dataset, feature_state)
        else:
            user = int(rng.integers(0, dataset.num_users))
            served = service.recommend(user)
            np.testing.assert_array_equal(
                served,
                truth[user],
                err_msg=f"{model_name}: user {user} diverged at step {step}",
            )

    stats = service.stats
    assert stats["hits"] + stats["misses"] > 0
    if visual:
        # The point of fine-grained invalidation: across ~30 update batches
        # some cached lists must survive untouched (hits after updates) and
        # some must be dropped.
        assert stats["invalidations"] > 0
    else:
        # Attack-immune control: feature pushes never invalidate BPR-MF.
        assert stats["invalidations"] == 0
        assert stats["feature_updates"] > 0


@pytest.mark.parametrize("model_name", ["vbpr"])
def test_cache_actually_serves_across_updates(dataset, features, model_name):
    """Guard against trivially-correct implementations that drop everything.

    With small, off-head feature perturbations the threshold rule must
    keep most entries alive, so replayed requests hit the cache even
    though updates keep arriving.
    """
    model = build_model(model_name, dataset, features)
    service = RecommenderService(
        model, feedback=dataset.feedback, features=np.array(features, copy=True), n=N
    )
    rng = np.random.default_rng(5)
    users = list(range(dataset.num_users))
    head_union = set()
    for user in users:
        head_union.update(service.recommend(user).tolist())
    off_head = [i for i in range(dataset.num_items) if i not in head_union]
    assert off_head, "need items outside every served head for this test"
    for item in off_head[:10]:
        # Tiny nudges: scores barely move and the item is in nobody's
        # head, so no entry may be invalidated.
        nudged = features[item] + rng.normal(0, 1e-6, FEATURE_DIM)
        service.push_item_features([item], nudged[None, :])
    for user in users:
        service.recommend(user)
    stats = service.stats
    assert stats["invalidations"] == 0
    assert stats["hits"] == len(users)
