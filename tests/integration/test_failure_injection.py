"""Failure-injection tests: the stack must fail loudly on bad inputs.

Distributed-systems practice: every component validates its inputs and
raises a diagnosable error instead of silently corrupting downstream
state.  These tests inject NaNs, empty sets, mismatched universes and
mid-pipeline tampering, and assert a clean failure (or a documented
graceful path) everywhere.
"""

import numpy as np
import pytest

from repro.attacks import FGSM, PGD
from repro.core import TAaMRPipeline, make_scenario
from repro.data import tiny_dataset
from repro.data.interactions import ImplicitFeedback
from repro.features import ClassifierConfig, FeatureExtractor, train_catalog_classifier
from repro.nn import Tensor, TinyResNet, cross_entropy
from repro.recommenders import VBPR, VBPRConfig


@pytest.fixture(scope="module")
def stack():
    ds = tiny_dataset(seed=0, image_size=16)
    model, _ = train_catalog_classifier(
        ds.images,
        ds.item_categories,
        ds.num_categories,
        widths=(8, 16),
        blocks_per_stage=(1, 1),
        config=ClassifierConfig(epochs=10, batch_size=16, seed=0),
    )
    extractor = FeatureExtractor(model).fit(ds.images)
    vbpr = VBPR(
        ds.num_users, ds.num_items, extractor.transform(ds.images), VBPRConfig(epochs=5)
    ).fit(ds.feedback)
    return ds, model, extractor, vbpr


class TestCorruptInputs:
    def test_nan_features_rejected_at_model_construction(self, stack):
        ds, _, extractor, _ = stack
        features = extractor.transform(ds.images)
        features[3, 0] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            VBPR(ds.num_users, ds.num_items, features)

    def test_nan_image_poisons_loss_visibly(self, stack):
        """A NaN pixel must surface as a NaN loss, never as a silent number."""
        _, model, _, _ = stack
        images = np.zeros((1, 3, 16, 16))
        images[0, 0, 0, 0] = np.nan
        loss = cross_entropy(model(Tensor(images)), np.array([0]))
        assert np.isnan(loss.item())

    def test_attack_rejects_out_of_range_images(self, stack):
        _, model, _, _ = stack
        with pytest.raises(ValueError, match="\\[0, 1\\]"):
            FGSM(model, 0.05).attack(np.full((1, 3, 16, 16), 7.0), target_class=0)

    def test_attack_on_empty_batch(self, stack):
        _, model, _, _ = stack
        result = FGSM(model, 0.05).attack(
            np.zeros((0, 3, 16, 16)), target_class=0
        )
        assert result.num_images == 0
        assert result.success_rate() == 0.0


class TestUniverseMismatches:
    def test_recommender_rejects_foreign_feedback(self, stack):
        ds, _, extractor, _ = stack
        other = ImplicitFeedback(
            num_users=3,
            num_items=ds.num_items,
            train_items=[np.array([0]), np.array([1]), np.array([2])],
            test_items=np.array([-1, -1, -1]),
        )
        model = VBPR(ds.num_users, ds.num_items, extractor.transform(ds.images))
        with pytest.raises(ValueError, match="universe"):
            model.fit(other)

    def test_pipeline_rejects_wrong_feature_count(self, stack):
        ds, _, _, vbpr = stack
        with pytest.raises(ValueError):
            vbpr.score_all(features=np.zeros((ds.num_items + 1, vbpr.feature_dim)))

    def test_classifier_rejects_wrong_class_space(self, stack):
        ds, _, _, _ = stack
        tiny = TinyResNet(num_classes=2, widths=(4,), blocks_per_stage=(1,))
        with pytest.raises(ValueError):
            train_catalog_classifier  # noqa: B018 - reference only
            from repro.features import ClassifierTrainer

            ClassifierTrainer(tiny, ClassifierConfig(epochs=1)).fit(
                ds.images, ds.item_categories
            )


class TestMidPipelineTampering:
    def test_scores_after_attack_remain_finite(self, stack):
        ds, model, extractor, vbpr = stack
        pipeline = TAaMRPipeline(ds, extractor, vbpr, cutoff=20)
        scenario = make_scenario(ds.registry, "sock", "running_shoe")
        outcome = pipeline.attack_category(
            scenario, PGD(model, 16 / 255, num_steps=3, seed=0)
        )
        assert np.isfinite(outcome.scores_after).all()
        assert np.isfinite(outcome.visual.psnr)

    def test_unfitted_extractor_blocks_pipeline(self, stack):
        ds, model, _, vbpr = stack
        with pytest.raises(RuntimeError, match="fit"):
            TAaMRPipeline(ds, FeatureExtractor(model), vbpr)

    def test_single_user_universe_works(self):
        """Degenerate but legal: one user, minimal items."""
        feedback = ImplicitFeedback(
            num_users=1,
            num_items=6,
            train_items=[np.array([0, 1, 2, 3])],
            test_items=np.array([4]),
        )
        features = np.random.default_rng(0).normal(size=(6, 4))
        model = VBPR(1, 6, features, VBPRConfig(epochs=2, batch_size=8)).fit(feedback)
        lists = model.top_n(3, feedback=feedback)
        assert lists.shape == (1, 3)

    def test_zero_epsilon_attack_is_noop_end_to_end(self, stack):
        ds, model, extractor, vbpr = stack
        pipeline = TAaMRPipeline(ds, extractor, vbpr, cutoff=20)
        scenario = make_scenario(ds.registry, "sock", "running_shoe")
        outcome = pipeline.attack_category(scenario, FGSM(model, 0.0))
        assert outcome.chr_source_after == pytest.approx(outcome.chr_source_before)
        np.testing.assert_allclose(
            outcome.adversarial_images, ds.images[outcome.attacked_item_ids]
        )
