"""End-to-end integration tests: the paper's directional claims.

These tests run the full TAaMR stack (synthetic dataset → classifier →
features → VBPR/AMR → attacks → CHR) at a small-but-meaningful scale
and assert the *shape* of the paper's results:

* RQ1 — targeted attacks raise the attacked category's CHR@N, more so
  with larger ε and with PGD than FGSM;
* the adversarially-trained AMR is less affected than VBPR;
* RQ2 — perturbed images stay visually close (PSNR/SSIM in the paper's
  bands).
"""

import numpy as np
import pytest

from repro.experiments import (
    build_context,
    men_config,
    run_attack_grid,
)

CONFIG = dict(
    scale=0.004,
    image_size=32,
    classifier_epochs=12,
    recommender_epochs=50,
    amr_pretrain_epochs=25,
    cutoff=100,
    epsilons_255=(4.0, 8.0, 16.0),
)


@pytest.fixture(scope="module")
def context():
    return build_context(men_config(**CONFIG))


@pytest.fixture(scope="module")
def vbpr_grid(context):
    return run_attack_grid(context, "VBPR")


@pytest.fixture(scope="module")
def amr_grid(context):
    return run_attack_grid(context, "AMR")


def similar_scenario(grid):
    return next(s for s in grid.scenarios if s.semantically_similar)


class TestSubstrateQuality:
    def test_classifier_is_competent(self, context):
        """The paper's extractor is near-perfect on its classes."""
        assert context.classifier_accuracy > 0.95

    def test_source_category_is_low_recommended(self, vbpr_grid):
        """The scenario premise: sock CHR << running-shoe CHR."""
        report = vbpr_grid.pipeline.clean_chr_report()
        assert report["sock"] < report["running_shoe"] / 2

    def test_recommender_beats_random(self, context):
        from repro.recommenders import evaluate_ranking

        report = evaluate_ranking(context.vbpr, context.dataset.feedback, cutoff=10)
        assert report.auc > 0.6


class TestRQ1RecommendationShift:
    def test_pgd_raises_source_chr(self, vbpr_grid):
        scenario = similar_scenario(vbpr_grid)
        strongest = [
            o
            for o in vbpr_grid.cells(scenario=scenario, attack_name="PGD")
            if o.epsilon_255 == 16.0
        ][0]
        assert strongest.chr_source_after > strongest.chr_source_before

    def test_chr_grows_with_epsilon_under_pgd(self, vbpr_grid):
        scenario = similar_scenario(vbpr_grid)
        cells = sorted(
            vbpr_grid.cells(scenario=scenario, attack_name="PGD"),
            key=lambda o: o.epsilon_255,
        )
        values = [o.chr_source_after for o in cells]
        assert values[-1] > values[0]

    def test_pgd_stronger_than_fgsm(self, vbpr_grid):
        """Table II/III: PGD dominates FGSM at matched budgets."""
        scenario = similar_scenario(vbpr_grid)
        for eps in (8.0, 16.0):
            pgd = [
                o
                for o in vbpr_grid.cells(scenario=scenario, attack_name="PGD")
                if o.epsilon_255 == eps
            ][0]
            fgsm = [
                o
                for o in vbpr_grid.cells(scenario=scenario, attack_name="FGSM")
                if o.epsilon_255 == eps
            ][0]
            assert pgd.success_rate >= fgsm.success_rate

    def test_success_rate_grows_with_epsilon(self, vbpr_grid):
        scenario = similar_scenario(vbpr_grid)
        cells = sorted(
            vbpr_grid.cells(scenario=scenario, attack_name="PGD"),
            key=lambda o: o.epsilon_255,
        )
        rates = [o.success_rate for o in cells]
        assert rates[-1] >= rates[0]
        assert rates[-1] > 0.8  # strong budgets should (almost) always succeed

    def test_similar_scenario_at_least_as_effective(self, vbpr_grid):
        """Paper: semantic closeness of source/target helps the attack."""
        similar = similar_scenario(vbpr_grid)
        dissimilar = next(s for s in vbpr_grid.scenarios if not s.semantically_similar)
        uplift_similar = np.mean(
            [
                o.chr_source_after - o.chr_source_before
                for o in vbpr_grid.cells(scenario=similar, attack_name="PGD")
            ]
        )
        uplift_dissimilar = np.mean(
            [
                o.chr_source_after - o.chr_source_before
                for o in vbpr_grid.cells(scenario=dissimilar, attack_name="PGD")
            ]
        )
        assert uplift_similar >= uplift_dissimilar - 0.25  # allow small noise


class TestAMRRobustness:
    def test_amr_less_affected_than_vbpr(self, vbpr_grid, amr_grid):
        """Paper Table II: the adversarial regularizer dampens TAaMR."""
        vbpr_uplift = np.mean(
            [o.chr_source_after - o.chr_source_before for o in vbpr_grid.outcomes]
        )
        amr_uplift = np.mean(
            [o.chr_source_after - o.chr_source_before for o in amr_grid.outcomes]
        )
        assert amr_uplift <= vbpr_uplift

    def test_amr_not_completely_safe(self, amr_grid):
        """Paper: AMR is 'less affected … but not completely safe'."""
        strongest = [
            o
            for o in amr_grid.outcomes
            if o.attack_name == "PGD" and o.epsilon_255 == 16.0
        ]
        assert any(o.success_rate > 0.5 for o in strongest)


class TestRQ2VisualQuality:
    def test_psnr_in_paper_band(self, vbpr_grid):
        """Paper: PSNR stays within the acceptable 20-50 dB range."""
        for outcome in vbpr_grid.outcomes:
            assert 20.0 < outcome.visual.psnr < 55.0

    def test_ssim_stays_high(self, vbpr_grid):
        for outcome in vbpr_grid.outcomes:
            assert outcome.visual.ssim > 0.8

    def test_distortion_grows_with_epsilon(self, vbpr_grid):
        scenario = similar_scenario(vbpr_grid)
        cells = sorted(
            vbpr_grid.cells(scenario=scenario, attack_name="PGD"),
            key=lambda o: o.epsilon_255,
        )
        psnrs = [o.visual.psnr for o in cells]
        assert psnrs[0] > psnrs[-1]  # more budget, more distortion

    def test_fgsm_psm_below_pgd(self, vbpr_grid):
        """Paper Table IV: PGD moves features more than FGSM (higher PSM)."""
        scenario = similar_scenario(vbpr_grid)
        for eps in (8.0, 16.0):
            pgd = [
                o
                for o in vbpr_grid.cells(scenario=scenario, attack_name="PGD")
                if o.epsilon_255 == eps
            ][0]
            fgsm = [
                o
                for o in vbpr_grid.cells(scenario=scenario, attack_name="FGSM")
                if o.epsilon_255 == eps
            ][0]
            assert pgd.visual.psm >= fgsm.visual.psm * 0.5  # PGD not far below


class TestFig2Example:
    def test_attacked_item_rank_improves(self, vbpr_grid):
        """Fig. 2: a successfully attacked sock climbs the rankings."""
        scenario = similar_scenario(vbpr_grid)
        outcome = [
            o
            for o in vbpr_grid.cells(scenario=scenario, attack_name="PGD")
            if o.epsilon_255 == 16.0
        ][0]
        model = vbpr_grid.pipeline.extractor.model
        target_class = vbpr_grid.pipeline.dataset.registry.by_name(
            scenario.target
        ).category_id
        successes = outcome.attacked_item_ids[
            model.predict(outcome.adversarial_images) == target_class
        ]
        assert successes.size > 0
        improvements = []
        for item in successes[:5]:
            report = vbpr_grid.pipeline.item_report(outcome, int(item))
            improvements.append(report.mean_rank_before - report.mean_rank_after)
        assert np.mean(improvements) > 0  # lower rank number = better position
