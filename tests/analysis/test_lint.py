"""Self-tests for the repro.analysis lint engine.

Each fixture under ``fixtures/`` carries one rule's deliberate
violations (marked ``# VIOLATION``); the tests assert every rule fires
exactly on those lines — and nowhere in the shipped ``src/repro`` tree.
"""

import json
from pathlib import Path

import pytest

from repro.analysis import ALL_RULES, LintEngine, rule_by_id
from repro.analysis.engine import PACKAGE_ROOT
from repro.cli import main as cli_main

FIXTURES = Path(__file__).parent / "fixtures"


def _engine() -> LintEngine:
    return LintEngine(ALL_RULES)


def _violation_lines(path: Path, rule: str):
    violations = _engine().run([path], select=[rule])
    assert all(v.rule == rule for v in violations)
    return [v.line for v in violations]


def _marked_lines(path: Path):
    return [
        lineno
        for lineno, text in enumerate(path.read_text().splitlines(), start=1)
        if "# VIOLATION" in text
    ]


class TestRuleRegistry:
    def test_all_ten_rules_registered(self):
        assert [rule.id for rule in ALL_RULES] == [
            "RPR001",
            "RPR002",
            "RPR003",
            "RPR004",
            "RPR005",
            "RPR006",
            "RPR007",
            "RPR008",
            "RPR009",
            "RPR010",
        ]

    def test_concurrency_rules_are_project_scoped(self):
        by_project = {rule.id: rule.project for rule in ALL_RULES}
        assert all(by_project[rule_id] for rule_id in ("RPR007", "RPR008", "RPR009", "RPR010"))
        assert not any(by_project[rule_id] for rule_id in ("RPR001", "RPR002", "RPR003"))

    def test_every_rule_has_explanation(self):
        for rule in ALL_RULES:
            assert rule.title and len(rule.rationale.strip()) > 40
        assert rule_by_id("rpr003") is ALL_RULES[2]
        assert rule_by_id("RPR999") is None


class TestFixturesFireExactly:
    @pytest.mark.parametrize(
        "fixture, rule",
        [
            ("rpr001.py", "RPR001"),
            ("rpr002.py", "RPR002"),
            ("rpr004.py", "RPR004"),
            ("rpr005.py", "RPR005"),
            ("rpr006.py", "RPR006"),
        ],
    )
    def test_fixture_hits_marked_lines_only(self, fixture, rule):
        path = FIXTURES / fixture
        assert _violation_lines(path, rule) == _marked_lines(path)

    def test_rpr003_catches_undeclared_read_and_unread_field(self):
        path = FIXTURES / "rpr003_stages.py"
        violations = _engine().run([path], select=["RPR003"])
        messages = {v.message for v in violations}
        assert len(violations) == 2
        undeclared = next(v for v in violations if "image_size" in v.message)
        unread = next(v for v in violations if "unused_knob" in v.message)
        # The undeclared read is reported at the read site inside _helper,
        # proving the transitive closure through helper calls works.
        assert undeclared.line in _marked_lines(path)
        assert "does not declare" in undeclared.message
        assert "never reads" in unread.message
        # cache_key() is a method call, not a field read.
        assert not any("cache_key" in message for message in messages)

    def test_allow_float64_pragma_suppresses(self):
        path = FIXTURES / "rpr001.py"
        pragma_lines = [
            lineno
            for lineno, text in enumerate(path.read_text().splitlines(), start=1)
            if "allow-float64" in text
        ]
        assert pragma_lines  # the fixture must exercise the pragma
        assert not set(pragma_lines) & set(_violation_lines(path, "RPR001"))

    def test_disable_pragma_suppresses(self, tmp_path):
        source = "import numpy as np\nx = np.zeros(3)  # lint: disable=RPR001\n"
        path = tmp_path / "pragma.py"
        path.write_text(source)
        assert _engine().run([path]) == []
        path.write_text(source.replace("  # lint: disable=RPR001", ""))
        assert [v.rule for v in _engine().run([path])] == ["RPR001"]


class TestShippedTreeClean:
    def test_src_repro_is_lint_clean(self):
        violations = _engine().run([PACKAGE_ROOT])
        assert violations == [], LintEngine.format_text(violations)

    def test_rpr003_actually_parses_shipped_stages(self):
        # Guard against RPR003 silently skipping stages.py: the spec
        # parser must extract all eight stages from the real module.
        from repro.analysis.engine import ParsedModule
        from repro.analysis.fingerprints import StageFingerprintRule

        module = ParsedModule(PACKAGE_ROOT / "experiments" / "stages.py")
        specs = StageFingerprintRule()._parse_specs(module.tree)
        assert specs is not None and len(specs) == 8


class TestSelectIgnoreAndFormats:
    def test_select_limits_rules(self):
        violations = _engine().run([FIXTURES / "rpr005.py"], select=["RPR004"])
        assert violations == []

    def test_ignore_drops_rules(self):
        violations = _engine().run([FIXTURES / "rpr005.py"], ignore=["RPR005"])
        assert not any(v.rule == "RPR005" for v in violations)

    def test_unknown_select_raises(self):
        with pytest.raises(ValueError, match="RPR999"):
            _engine().run([FIXTURES], select=["RPR999"])


class TestCli:
    def test_clean_tree_exits_zero(self, capsys):
        assert cli_main(["lint"]) == 0
        assert "clean" in capsys.readouterr().out

    @pytest.mark.parametrize(
        "fixture",
        ["rpr001.py", "rpr002.py", "rpr003_stages.py", "rpr004.py", "rpr005.py", "rpr006.py"],
    )
    def test_each_fixture_fails_the_cli(self, fixture, capsys):
        assert cli_main(["lint", str(FIXTURES / fixture)]) == 1
        out = capsys.readouterr().out
        rule = "RPR003" if "rpr003" in fixture else fixture[:6].upper()
        assert rule in out and f"{fixture}:" in out

    def test_json_format_is_machine_readable(self, capsys):
        assert cli_main(["lint", "--format", "json", str(FIXTURES / "rpr004.py")]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert {entry["rule"] for entry in payload} == {"RPR004"}
        assert all({"path", "line", "col", "message"} <= set(entry) for entry in payload)

    def test_explain_prints_rationale(self, capsys):
        assert cli_main(["lint", "--explain", "--select", "RPR003"]) == 0
        out = capsys.readouterr().out
        assert "RPR003" in out and "fingerprint" in out
        assert "RPR004" not in out

    def test_unknown_rule_exits_two(self, capsys):
        assert cli_main(["lint", "--select", "RPR999"]) == 2
