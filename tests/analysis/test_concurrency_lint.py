"""Self-tests for the interprocedural concurrency rules (RPR007–RPR010).

Same contract as ``test_lint.py``: each fixture carries one rule's
deliberate violations marked ``# VIOLATION``, the rule must fire exactly
on those lines, and the shipped ``src/repro`` tree must stay clean.
"""

import json
from pathlib import Path

import pytest

from repro.analysis import ALL_RULES, LintEngine
from repro.analysis.engine import PACKAGE_ROOT
from repro.cli import main as cli_main

FIXTURES = Path(__file__).parent / "fixtures"
CONCURRENCY_RULES = ("RPR007", "RPR008", "RPR009", "RPR010")


def _engine() -> LintEngine:
    return LintEngine(ALL_RULES)


def _violation_lines(path: Path, rule: str):
    violations = _engine().run([path], select=[rule])
    assert all(v.rule == rule for v in violations)
    return [v.line for v in violations]


def _marked_lines(path: Path):
    return [
        lineno
        for lineno, text in enumerate(path.read_text().splitlines(), start=1)
        if "# VIOLATION" in text
    ]


class TestFixturesFireExactly:
    @pytest.mark.parametrize(
        "fixture, rule",
        [
            ("rpr007_shm.py", "RPR007"),
            ("rpr008_protocol.py", "RPR008"),
            ("rpr009_epochs.py", "RPR009"),
            ("rpr010_queues.py", "RPR010"),
        ],
    )
    def test_fixture_hits_marked_lines_only(self, fixture, rule):
        path = FIXTURES / fixture
        assert _violation_lines(path, rule) == _marked_lines(path)

    def test_rpr007_interprocedural_taint_reaches_helper(self):
        # The helper's own in-place write fires because a *caller* hands
        # it a bank view — per-file AST matching could never see that.
        path = FIXTURES / "rpr007_shm.py"
        violations = _engine().run([path], select=["RPR007"])
        helper = [v for v in violations if "in-place" in v.message and v.line < 20]
        assert helper, "taint did not propagate into _scale_in_place"

    def test_rpr007_copy_launders_taint(self):
        path = FIXTURES / "rpr007_shm.py"
        source = path.read_text().splitlines()
        violating = {v.line for v in _engine().run([path], select=["RPR007"])}
        private_lines = [
            lineno
            for lineno, text in enumerate(source, start=1)
            if "private" in text
        ]
        assert private_lines and not set(private_lines) & violating

    def test_rpr008_messages_name_both_directions(self):
        violations = _engine().run(
            [FIXTURES / "rpr008_protocol.py"], select=["RPR008"]
        )
        messages = " | ".join(v.message for v in violations)
        assert "no handler" in messages  # unknown op at the call site
        assert "dead protocol surface" in messages  # handler with no caller
        assert 'requires payload key "epoch"' in messages  # missing key

    def test_rpr009_annotates_worker_reachability(self):
        violations = _engine().run(
            [FIXTURES / "rpr009_epochs.py"], select=["RPR009"]
        )
        hot_patch = [v for v in violations if "update_item_features" in v.message]
        assert hot_patch
        # hot_patch is called from the fixture's _dispatch, so the
        # message names the worker dispatch table.
        assert any("worker dispatch" in v.message for v in hot_patch)

    def test_rpr010_inversions_point_at_both_sites(self):
        violations = _engine().run(
            [FIXTURES / "rpr010_queues.py"], select=["RPR010"]
        )
        inversions = [v for v in violations if "inversion" in v.message]
        assert len(inversions) == 2
        assert {v.line for v in inversions} == {
            lineno
            for lineno, text in enumerate(
                (FIXTURES / "rpr010_queues.py").read_text().splitlines(), start=1
            )
            if "order" in text and "# VIOLATION" in text
        }


class TestPragmasAndScope:
    def test_sanctioned_setflags_is_pragma_suppressed(self):
        # The fixture's sanctioned_escape re-enables the write flag under
        # `# lint: disable=RPR007`; dropping the pragma must re-fire it.
        path = FIXTURES / "rpr007_shm.py"
        source = path.read_text()
        assert "lint: disable=RPR007" in source
        pragma_line = next(
            lineno
            for lineno, text in enumerate(source.splitlines(), start=1)
            if "lint: disable=RPR007" in text
        )
        assert pragma_line not in _violation_lines(path, "RPR007")

    def test_pragma_removal_refires(self, tmp_path):
        source = (FIXTURES / "rpr007_shm.py").read_text()
        stripped = source.replace("  # lint: disable=RPR007", "")
        path = tmp_path / "unsanctioned.py"
        path.write_text(stripped)
        lines = _violation_lines(path, "RPR007")
        assert len(lines) == len(_marked_lines(FIXTURES / "rpr007_shm.py")) + 1

    def test_out_of_scope_modules_are_ignored(self):
        # Project rules scope to the serving tree inside the package;
        # a file under src/repro but outside serving/ must not be taxed.
        copy = PACKAGE_ROOT / "rng.py"
        violations = _engine().run([copy], select=list(CONCURRENCY_RULES))
        assert violations == []


class TestShippedTreeClean:
    @pytest.mark.parametrize("rule", CONCURRENCY_RULES)
    def test_src_repro_is_clean_per_rule(self, rule):
        violations = _engine().run([PACKAGE_ROOT], select=[rule])
        assert violations == [], LintEngine.format_text(violations)


class TestGithubFormat:
    def test_annotations_escape_and_count(self):
        path = FIXTURES / "rpr010_queues.py"
        violations = _engine().run([path], select=["RPR010"])
        out = LintEngine.format_github(violations)
        lines = out.splitlines()
        assert lines[-1] == f"{len(violations)} violation(s)"
        for line in lines[:-1]:
            assert line.startswith("::error file=")
            assert ",line=" in line and ",col=" in line and ",title=RPR010::" in line
            # Workflow-command grammar: no raw newlines inside a message.
            assert "\n" not in line

    def test_clean_run_renders_clean(self):
        assert LintEngine.format_github([]) == "clean: no violations"

    def test_escapes_reserved_characters(self):
        from repro.analysis.engine import Violation

        out = LintEngine.format_github(
            [Violation("RPR007", "x.py", 1, 1, "50% of\nwrites")]
        )
        assert "50%25 of%0Awrites" in out


class TestCli:
    @pytest.mark.parametrize(
        "fixture, rule",
        [
            ("rpr007_shm.py", "RPR007"),
            ("rpr008_protocol.py", "RPR008"),
            ("rpr009_epochs.py", "RPR009"),
            ("rpr010_queues.py", "RPR010"),
        ],
    )
    def test_each_fixture_fails_the_cli(self, fixture, rule, capsys):
        assert cli_main(["lint", "--select", rule, str(FIXTURES / fixture)]) == 1
        out = capsys.readouterr().out
        assert rule in out and f"{fixture}:" in out

    def test_github_format_via_cli(self, capsys):
        code = cli_main(
            ["lint", "--format", "github", "--select", "RPR007",
             str(FIXTURES / "rpr007_shm.py")]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "::error file=" in out and "title=RPR007" in out

    def test_json_format_carries_concurrency_rules(self, capsys):
        code = cli_main(
            ["lint", "--format", "json", "--select", "RPR008",
             str(FIXTURES / "rpr008_protocol.py")]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert {entry["rule"] for entry in payload} == {"RPR008"}

    def test_explain_covers_new_rules(self, capsys):
        assert cli_main(["lint", "--explain", "--select", "RPR007"]) == 0
        out = capsys.readouterr().out
        assert "RPR007" in out and "single-writer" in out
