"""RPR003 fixture — a stages.py-shaped module with fingerprint bugs.

Mirrors the structure of ``repro/experiments/stages.py``: STAGE_SPECS
declarations plus _BUILDERS/_PACKERS/_UNPACKERS dispatch dicts.  Two
deliberate defects:

* ``_helper`` (called from ``_build_dataset``) reads
  ``config.image_size``, which the 'dataset' spec does not declare —
  the stale-cache bug RPR003 exists to catch, reached transitively.
* the 'dataset' spec declares ``unused_knob``, which nothing reads.

Never imported; parsed by the lint self-tests.
"""

from collections import namedtuple

StageSpec = namedtuple("StageSpec", "name deps config_fields")


def _helper(results):
    config = results.config
    return config.image_size  # VIOLATION: read but undeclared (transitive)


def _build_dataset(results):
    config = results.config
    size = _helper(results)
    return config.scale, config.seed, size


def _pack_dataset(results):
    key = results.config.cache_key()  # clean: method call, not a field read
    return {"key": key}, {}


def _unpack_dataset(results, arrays, meta):
    results.dataset = arrays


STAGE_SPECS = (
    # VIOLATION (this call): declares 'unused_knob', which is never read.
    StageSpec("dataset", (), ("scale", "seed", "unused_knob")),
)

_BUILDERS = {"dataset": _build_dataset}
_PACKERS = {"dataset": _pack_dataset}
_UNPACKERS = {"dataset": _unpack_dataset}
