"""RPR001 fixture — one violation per dtype-promotion hazard form.

Never imported; parsed by the lint self-tests.  Expected hits carry a
VIOLATION marker comment; the pragma'd line must NOT fire.
"""

import numpy as np


def hazards(x):
    a = np.zeros((2, 2))  # VIOLATION: bare allocation defaults to float64
    b = np.array([1.0, 2.0])  # VIOLATION: literal converts to float64
    c = np.asarray(x, dtype=np.float64)  # VIOLATION: float64 in policy code
    d = np.asarray(x, dtype=np.float64)  # lint: allow-float64
    e = np.asarray(x)  # clean: passthrough preserves the operand dtype
    f = np.zeros((2, 2), dtype=np.float32)  # clean: explicit dtype
    return a, b, c, d, e, f
