"""RPR004 fixture — mutable default arguments.

Never imported; parsed by the lint self-tests.
"""


def bad(x, cache={}):  # VIOLATION: shared dict across calls
    cache[x] = True
    return cache


def also_bad(x, *, seen=list()):  # VIOLATION: list() default
    seen.append(x)
    return seen


def fine(x, cache=None, y=(), z="name"):  # clean: immutable defaults
    if cache is None:
        cache = {}
    cache[x] = (y, z)
    return cache
