"""RPR009 fixture — shard state mutated outside submit_update sequencing.

Never imported; parsed by the lint self-tests.  ``_dispatch`` below
makes the rogue path reachable from the worker dispatch table, which
the rule annotates in its message.
"""


class RogueShard:
    def __init__(self, scorer, index):
        self.scorer = scorer
        self.index = index
        self.applied_epoch = 0  # __init__ may initialise the ledger

    def submit_update(self, epoch, item_ids, item_features):
        # The sanctioned path: epoch-sequenced mutation is fine.
        changed = self.scorer.update_item_features(item_ids, item_features)
        self.applied_epoch = epoch
        return changed

    def hot_patch(self, item_ids, item_features):
        self.scorer.update_item_features(item_ids, item_features)  # VIOLATION: skips the epoch ledger

    def flush_cache(self, users):
        self.index.invalidate_users(users)  # VIOLATION: ad-hoc invalidation
        self.index.clear()  # VIOLATION: cache clear outside teardown

    def rewind(self, epoch):
        self.applied_epoch = epoch  # VIOLATION: ledger rewound out of band

    def close(self):
        self.index.clear()  # teardown may clear the cache


def _dispatch(shard, op, payload):
    if op == "patch":
        return shard.hot_patch(payload["ids"], payload["features"])
    return None
