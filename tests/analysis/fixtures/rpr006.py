"""RPR006 fixture — raw time-module timing outside repro.telemetry.

Never imported; parsed by the lint self-tests.
"""

import time
from time import perf_counter as tick


def measure(fn):
    started = time.perf_counter()  # VIOLATION: raw clock read, not telemetry
    fn()
    return time.perf_counter() - started  # VIOLATION: second raw read


def wall_clock():
    return time.time()  # VIOLATION: wall clock is not even monotonic


def renamed_import():
    return tick()  # VIOLATION: from-import spelling, renamed


def nanoseconds():
    return time.monotonic_ns()  # VIOLATION: _ns variants count too


def sanctioned():
    # The escape hatch: an audited exception carries the pragma.
    return time.monotonic()  # lint: disable=RPR006


def not_a_clock_read():
    time.sleep(0.0)  # sleeping is fine; only timing reads are flagged
    return time.struct_time
