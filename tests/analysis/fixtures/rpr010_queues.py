"""RPR010 fixture — queue/lock hygiene in the serving tier.

Never imported; parsed by the lint self-tests.  Queues and locks are
recognised by the serving tier's naming conventions (``inbox``/
``outbox``/``*queue*``, ``*lock*``/``*mutex*``).
"""

import threading

state_lock = threading.Lock()
stats_lock = threading.Lock()


class Handle:
    def __init__(self, inbox, outbox):
        self.inbox = inbox
        self.outbox = outbox
        self._lock = threading.Lock()

    def drain(self):
        return self.outbox.get()  # VIOLATION: blocking get outside the worker loop

    def polled(self):
        return self.outbox.get(timeout=0.1)  # bounded poll: fine

    def enqueue(self, item):
        with self._lock:
            self.inbox.put(item)  # VIOLATION: put under a held lock

    def enqueue_outside(self, item):
        self.inbox.put(item)  # no lock held: fine


def forward():
    with state_lock:
        with stats_lock:  # VIOLATION: opposite order from backward()
            pass


def backward():
    with stats_lock:
        with state_lock:  # VIOLATION: lock-order inversion with forward()
            pass


def shard_worker_main(inbox, outbox):
    # The sanctioned worker loop may block forever on its inbox.
    while True:
        task = inbox.get()
        if task is None:
            break
        outbox.put(task)
