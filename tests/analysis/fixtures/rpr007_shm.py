"""RPR007 fixture — writes escaping onto worker-attached shm views.

Never imported; parsed by the lint self-tests.  Files outside the
package are in scope for every rule, so the sharded-tier taint pass
runs here exactly as it does over ``src/repro/serving/sharded``.
"""

import numpy as np

from repro.serving.sharded.shm import attach_bundle


def _scale_in_place(block, factor):
    # Interprocedural: the caller below hands this a bank view, so the
    # taint reaches this parameter and the in-place write is flagged
    # here as well as at the call site.
    block *= factor  # VIOLATION: in-place write on a view the caller shares
    return block


def worker_writes(manifest):
    bank = attach_bundle(manifest)
    view = bank["features"]
    view.flags.writeable = True  # VIOLATION: re-enables the write flag
    bank["features"][0] = 1.0  # VIOLATION: subscript store into the bank
    view += 2.0  # VIOLATION: in-place op on an attached view
    view.fill(0.0)  # VIOLATION: mutating ndarray method
    np.add(view, 1.0, out=view)  # VIOLATION: out= targets the shared view
    _scale_in_place(view, 2.0)  # VIOLATION: callee mutates its parameter
    private = np.array(view, copy=True)
    private += 1.0  # copies launder taint: private memory, no finding
    return private


def aliased_writes(manifest):
    bank = attach_bundle(manifest)
    flat = np.asarray(bank["features"]).reshape(-1)
    flat[0] = 3.0  # VIOLATION: asarray/reshape alias the same buffer
    return flat


def sanctioned_escape(manifest):
    bank = attach_bundle(manifest)
    scratch = bank["features"]
    scratch.setflags(write=True)  # lint: disable=RPR007
    return scratch
