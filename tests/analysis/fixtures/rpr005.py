"""RPR005 fixture — raw numpy serialization outside repro.artifacts.

Never imported; parsed by the lint self-tests.
"""

import numpy as np


def persist(path, array):
    np.savez(path, data=array)  # VIOLATION: bypasses the artifact protocol
    return np.load(path)  # VIOLATION: unversioned, unfingerprinted load
