"""RPR002 fixture — direct np.random calls outside repro.rng.

Never imported; parsed by the lint self-tests.
"""

from typing import Optional

import numpy as np


def draw(rng: Optional[np.random.Generator] = None):  # clean: annotation only
    if rng is None:
        rng = np.random.default_rng()  # VIOLATION: unseeded Generator
    np.random.seed(0)  # VIOLATION: legacy global seeding
    ok = isinstance(rng, np.random.Generator)  # clean: not a call target
    return rng.random(3), ok
