"""RPR008 fixture — RPC protocol drift between callers and _dispatch.

Never imported; parsed by the lint self-tests.  The rule rebuilds both
sides of the ``(op, seq, payload)`` protocol from this file alone: the
handler table from ``_dispatch``/``shard_worker_main`` and the op
constructions from ``call``/``cast``/raw queue-tuple ``put`` sites.
"""


def _dispatch(shard, op, payload):
    if op == "recommend":
        return shard.recommend(payload["user"], payload["n"])
    if op == "warm":  # VIOLATION: dead handler, no call site constructs it
        return shard.warm_start(payload["scores"])
    if op == "update":
        epoch = payload["epoch"]  # VIOLATION: no call site sets "epoch"
        if "features" in payload:
            shard.update(epoch, payload["features"])
        return epoch
    raise ValueError(op)


def shard_worker_main(spec, inbox, outbox):
    shard = spec.build()
    while True:
        op, seq, payload = inbox.get()
        if op == "stop":
            break
        outbox.put((op, seq, _dispatch(shard, op, payload)))


class Handle:
    def request(self, user):
        # Dict-literal payload: both mandatory keys present.
        return self.call("recommend", {"user": user, "n": 10})

    def push(self, items):
        # Local-name payload, resolved through the assignment and the
        # later subscript store — neither sets "epoch".
        payload = {"items": items}
        payload["extra"] = 1
        return self.cast("update", payload)

    def typo(self):
        return self.call("recomend", {"user": 1})  # VIOLATION: unknown op

    def shutdown(self):
        # Raw wire tuple: keeps the "stop" handler alive.
        self.inbox.put(("stop", 0, None))
