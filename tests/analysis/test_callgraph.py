"""Unit tests for the project call graph behind RPR007–RPR010."""

from pathlib import Path

import pytest

from repro.analysis.engine import ParsedModule
from repro.analysis.concurrency import (
    CallGraph,
    body_walk,
    final_attr_name,
    root_name,
)

SOURCE = '''
def helper(rows):
    rows[0] = 1.0
    return rows


def rebinder(block):
    block = list(block)
    block[0] = 2.0
    return block


def chained(outer_arg):
    return helper(outer_arg)


def top(data):
    chained(data)


class Service:
    def ping(self):
        return self.refresh()

    def refresh(self):
        return helper([1.0])

    def fill_into(self, target):
        target.fill(0.0)


def nested_host():
    def inner():
        return helper([2.0])

    return inner
'''


@pytest.fixture()
def graph(tmp_path: Path) -> CallGraph:
    path = tmp_path / "mod.py"
    path.write_text(SOURCE)
    return CallGraph([ParsedModule(path)])


def _one(graph: CallGraph, name: str):
    matches = graph.by_name(name)
    assert len(matches) == 1
    return matches[0]


class TestCollection:
    def test_functions_methods_and_nested_defs_collected(self, graph):
        names = {f.qualname for f in graph.functions}
        assert {
            "helper",
            "rebinder",
            "chained",
            "top",
            "Service.ping",
            "Service.refresh",
            "Service.fill_into",
            "nested_host",
            "inner",
        } <= names

    def test_body_walk_skips_nested_defs(self, graph):
        import ast

        host = _one(graph, "nested_host")
        calls = [n for n in body_walk(host.node) if isinstance(n, ast.Call)]
        # helper([2.0]) belongs to inner(), not to nested_host's body.
        assert calls == []


class TestResolution:
    def test_bare_name_resolves_to_module_function(self, graph):
        chained = _one(graph, "chained")
        (call, callees), = graph.calls_in(chained)
        assert [c.qualname for c in callees] == ["helper"]

    def test_self_call_resolves_to_own_class(self, graph):
        ping = _one(graph, "ping")
        (call, callees), = graph.calls_in(ping)
        assert [c.qualname for c in callees] == ["Service.refresh"]

    def test_reachability_is_transitive(self, graph):
        top = _one(graph, "top")
        reached = {f.qualname for f in graph.reachable_from([top])}
        assert {"top", "chained", "helper"} <= reached
        assert "rebinder" not in reached


class TestMutationSummaries:
    def test_direct_subscript_store_marks_param(self, graph):
        summary = graph.mutated_params()
        assert summary[_one(graph, "helper")] == {"rows"}

    def test_rebound_param_is_not_mutated(self, graph):
        # block = list(block) rebinds before the store: the caller's
        # object is untouched.
        summary = graph.mutated_params()
        assert summary[_one(graph, "rebinder")] == set()

    def test_mutation_propagates_through_call_chain(self, graph):
        summary = graph.mutated_params()
        assert summary[_one(graph, "chained")] == {"outer_arg"}
        assert summary[_one(graph, "top")] == {"data"}

    def test_mutating_method_marks_param_not_self(self, graph):
        summary = graph.mutated_params()
        assert summary[_one(graph, "fill_into")] == {"target"}

    def test_param_for_arg_accounts_for_method_self_slot(self, graph):
        import ast

        fill_into = _one(graph, "fill_into")
        call = ast.parse("svc.fill_into(arr)", mode="eval").body
        assert graph.param_for_arg(fill_into, call, position=0) == "target"
        bare = ast.parse("fill_into(svc, arr)", mode="eval").body
        assert graph.param_for_arg(fill_into, bare, position=1) == "target"


class TestNameHelpers:
    def test_root_and_final_attr_names(self):
        import ast

        expr = ast.parse('bank["scores"][0]', mode="eval").body
        assert root_name(expr) == "bank"
        attr = ast.parse("self._inbox", mode="eval").body
        assert final_attr_name(attr) == "_inbox"
        assert root_name(attr) == "self"
