"""Property-based tests for recommender scoring invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.interactions import ImplicitFeedback
from repro.recommenders import VBPR, VBPRConfig


@st.composite
def fitted_vbpr(draw):
    num_users = draw(st.integers(2, 8))
    num_items = draw(st.integers(6, 15))
    feature_dim = draw(st.integers(2, 6))
    seed = draw(st.integers(0, 1000))
    rng = np.random.default_rng(seed)
    features = rng.normal(size=(num_items, feature_dim))

    train_items = []
    for _ in range(num_users):
        count = int(rng.integers(2, min(5, num_items)))
        train_items.append(
            np.sort(rng.choice(num_items, size=count, replace=False)).astype(np.int64)
        )
    feedback = ImplicitFeedback(
        num_users=num_users,
        num_items=num_items,
        train_items=train_items,
        test_items=np.full(num_users, -1, dtype=np.int64),
    )
    model = VBPR(
        num_users,
        num_items,
        features,
        VBPRConfig(epochs=2, batch_size=16, seed=seed),
    ).fit(feedback)
    return model, feedback, features, rng


class TestScoringInvariants:
    @given(fitted_vbpr())
    @settings(max_examples=20, deadline=None)
    def test_score_items_matches_score_all(self, case):
        model, _, features, rng = case
        item_ids = rng.choice(model.num_items, size=3, replace=False)
        columns = model.score_items(features[item_ids], item_ids)
        full = model.score_all()
        np.testing.assert_allclose(columns, full[:, item_ids], atol=1e-9)

    @given(fitted_vbpr())
    @settings(max_examples=20, deadline=None)
    def test_scores_finite(self, case):
        model, _, _, _ = case
        assert np.isfinite(model.score_all()).all()

    @given(fitted_vbpr())
    @settings(max_examples=20, deadline=None)
    def test_unattacked_items_scores_unchanged(self, case):
        """Replacing one item's features must not move other columns."""
        model, _, features, rng = case
        attacked = int(rng.integers(0, model.num_items))
        modified = features.copy()
        modified[attacked] += rng.normal(size=features.shape[1])
        before = model.score_all()
        after = model.score_all(features=modified)
        untouched = np.delete(np.arange(model.num_items), attacked)
        np.testing.assert_allclose(after[:, untouched], before[:, untouched], atol=1e-12)

    @given(fitted_vbpr())
    @settings(max_examples=20, deadline=None)
    def test_top_n_lists_are_permutation_free(self, case):
        model, feedback, _, _ = case
        lists = model.top_n(min(5, model.num_items), feedback=feedback)
        for row in lists:
            assert len(set(row.tolist())) == len(row)

    @given(fitted_vbpr())
    @settings(max_examples=20, deadline=None)
    def test_score_shift_invariance_of_ranking(self, case):
        """Adding a constant to every score leaves top-N unchanged."""
        model, feedback, _, _ = case
        scores = model.score_all()
        base = model.top_n(3, feedback=feedback, scores=scores)
        shifted = model.top_n(3, feedback=feedback, scores=scores + 42.0)
        np.testing.assert_array_equal(base, shifted)


class TestModuleStateProperties:
    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_state_dict_roundtrip_any_seed(self, seed):
        from repro.nn import Tensor, TinyResNet

        source = TinyResNet(num_classes=3, widths=(4, 8), blocks_per_stage=(1, 1), seed=seed)
        clone = TinyResNet(num_classes=3, widths=(4, 8), blocks_per_stage=(1, 1), seed=seed + 1)
        clone.load_state_dict(source.state_dict())
        x = np.random.default_rng(seed).random((2, 3, 8, 8))
        np.testing.assert_allclose(
            clone.eval()(Tensor(x)).data, source.eval()(Tensor(x)).data, atol=1e-12
        )

    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_state_dict_keys_stable_across_seeds(self, seed):
        from repro.nn import TinyResNet

        a = TinyResNet(num_classes=3, widths=(4,), blocks_per_stage=(1,), seed=seed)
        b = TinyResNet(num_classes=3, widths=(4,), blocks_per_stage=(1,), seed=0)
        assert set(a.state_dict()) == set(b.state_dict())
