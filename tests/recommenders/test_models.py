"""Unit tests for BPR-MF, VBPR and AMR models."""

import numpy as np
import pytest

from repro.data import tiny_dataset
from repro.recommenders import (
    AMR,
    AMRConfig,
    BPRMF,
    BPRMFConfig,
    VBPR,
    VBPRConfig,
    evaluate_ranking,
)


@pytest.fixture(scope="module")
def dataset():
    return tiny_dataset(seed=0, image_size=16)


@pytest.fixture(scope="module")
def features(dataset):
    # Synthetic standardised features; category-dependent so VBPR can learn.
    rng = np.random.default_rng(0)
    base = rng.normal(0, 1, (dataset.num_categories, 12))
    feats = base[dataset.item_categories] + rng.normal(0, 0.3, (dataset.num_items, 12))
    return feats


class TestBPRMF:
    def test_fit_reduces_loss(self, dataset):
        model = BPRMF(
            dataset.num_users, dataset.num_items, BPRMFConfig(epochs=25, seed=0)
        ).fit(dataset.feedback)
        assert model.loss_history[-1] < model.loss_history[0]

    def test_beats_random_auc(self, dataset):
        model = BPRMF(
            dataset.num_users, dataset.num_items, BPRMFConfig(epochs=30, seed=0)
        ).fit(dataset.feedback)
        report = evaluate_ranking(model, dataset.feedback, cutoff=10)
        assert report.auc > 0.55

    def test_score_shape(self, dataset):
        model = BPRMF(
            dataset.num_users, dataset.num_items, BPRMFConfig(epochs=1)
        ).fit(dataset.feedback)
        assert model.score_all().shape == (dataset.num_users, dataset.num_items)

    def test_deterministic_given_seed(self, dataset):
        a = BPRMF(dataset.num_users, dataset.num_items, BPRMFConfig(epochs=3, seed=5)).fit(
            dataset.feedback
        )
        b = BPRMF(dataset.num_users, dataset.num_items, BPRMFConfig(epochs=3, seed=5)).fit(
            dataset.feedback
        )
        np.testing.assert_allclose(a.score_all(), b.score_all())

    def test_wrong_universe_rejected(self, dataset):
        model = BPRMF(dataset.num_users + 1, dataset.num_items)
        with pytest.raises(ValueError):
            model.fit(dataset.feedback)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            BPRMFConfig(factors=0)
        with pytest.raises(ValueError):
            BPRMFConfig(learning_rate=0)
        with pytest.raises(ValueError):
            BPRMFConfig(regularization=-1)


class TestVBPR:
    def test_fit_reduces_loss(self, dataset, features):
        model = VBPR(
            dataset.num_users, dataset.num_items, features, VBPRConfig(epochs=25)
        ).fit(dataset.feedback)
        assert model.loss_history[-1] < model.loss_history[0]
        assert np.isfinite(model.loss_history[-1])

    def test_scores_depend_on_features(self, dataset, features):
        model = VBPR(
            dataset.num_users, dataset.num_items, features, VBPRConfig(epochs=10)
        ).fit(dataset.feedback)
        clean = model.score_all()
        shifted = model.score_all(features=features + 1.0)
        assert not np.allclose(clean, shifted)

    def test_score_items_matches_score_all_columns(self, dataset, features):
        model = VBPR(
            dataset.num_users, dataset.num_items, features, VBPRConfig(epochs=5)
        ).fit(dataset.feedback)
        item_ids = np.array([3, 17, 40])
        columns = model.score_items(features[item_ids], item_ids)
        full = model.score_all()
        np.testing.assert_allclose(columns, full[:, item_ids], atol=1e-10)

    def test_feature_validation(self, dataset, features):
        with pytest.raises(ValueError):
            VBPR(dataset.num_users, dataset.num_items, features[:-1])
        with pytest.raises(ValueError):
            VBPR(dataset.num_users, dataset.num_items, features[:, 0])
        bad = features.copy()
        bad[0, 0] = np.nan
        with pytest.raises(ValueError):
            VBPR(dataset.num_users, dataset.num_items, bad)

    def test_score_all_feature_shape_validation(self, dataset, features):
        model = VBPR(
            dataset.num_users, dataset.num_items, features, VBPRConfig(epochs=1)
        ).fit(dataset.feedback)
        with pytest.raises(ValueError):
            model.score_all(features=features[:, :4])

    def test_visual_model_uses_visual_signal(self, dataset, features):
        """Items of the same category (similar features) get similar visual scores."""
        model = VBPR(
            dataset.num_users, dataset.num_items, features, VBPRConfig(epochs=40, seed=1)
        ).fit(dataset.feedback)
        # Scores after zeroing collaborative terms: visual-only part.
        visual_part = (
            model.visual_user_factors @ (features @ model.embedding).T
            + (features @ model.visual_bias)[None, :]
        )
        socks = dataset.items_in_category("sock")
        shoes = dataset.items_in_category("running_shoe")
        within = np.corrcoef(visual_part[:, socks[0]], visual_part[:, socks[1]])[0, 1]
        across = np.corrcoef(visual_part[:, socks[0]], visual_part[:, shoes[0]])[0, 1]
        assert within > across

    def test_deterministic_given_seed(self, dataset, features):
        a = VBPR(
            dataset.num_users, dataset.num_items, features, VBPRConfig(epochs=3, seed=2)
        ).fit(dataset.feedback)
        b = VBPR(
            dataset.num_users, dataset.num_items, features, VBPRConfig(epochs=3, seed=2)
        ).fit(dataset.feedback)
        np.testing.assert_allclose(a.score_all(), b.score_all())

    def test_config_validation(self):
        with pytest.raises(ValueError):
            VBPRConfig(visual_factors=0)
        with pytest.raises(ValueError):
            VBPRConfig(visual_regularization=-0.1)


class TestAMR:
    def test_fit_converges(self, dataset, features):
        model = AMR(
            dataset.num_users,
            dataset.num_items,
            features,
            AMRConfig(epochs=20, pretrain_epochs=10),
        ).fit(dataset.feedback)
        assert np.isfinite(model.loss_history[-1])
        assert model.loss_history[-1] < model.loss_history[0]

    def test_requires_amr_config(self, dataset, features):
        with pytest.raises(TypeError):
            AMR(dataset.num_users, dataset.num_items, features, VBPRConfig())

    def test_adversarial_phase_changes_parameters(self, dataset, features):
        """Adversarial epochs must actually alter training (vs plain VBPR)."""
        common = dict(epochs=12, seed=3)
        vbpr_like = AMR(
            dataset.num_users,
            dataset.num_items,
            features,
            AMRConfig(pretrain_epochs=12, **common),
        ).fit(dataset.feedback)
        adversarial = AMR(
            dataset.num_users,
            dataset.num_items,
            features,
            AMRConfig(pretrain_epochs=6, **common),
        ).fit(dataset.feedback)
        assert not np.allclose(vbpr_like.embedding, adversarial.embedding)

    def test_pretrain_phase_matches_vbpr(self, dataset, features):
        """With pretrain_epochs == epochs, AMR degenerates to VBPR exactly."""
        config_kwargs = dict(epochs=5, seed=7, batch_size=128)
        amr = AMR(
            dataset.num_users,
            dataset.num_items,
            features,
            AMRConfig(pretrain_epochs=5, **config_kwargs),
        ).fit(dataset.feedback)
        vbpr = VBPR(
            dataset.num_users, dataset.num_items, features, VBPRConfig(**config_kwargs)
        ).fit(dataset.feedback)
        np.testing.assert_allclose(amr.score_all(), vbpr.score_all(), atol=1e-10)

    def test_perturbation_magnitude_is_eta(self, dataset, features):
        model = AMR(
            dataset.num_users,
            dataset.num_items,
            features,
            AMRConfig(epochs=1, pretrain_epochs=1, eta=2.0),
        )
        users = np.array([0, 1])
        positives = np.array([dataset.feedback.train_items[0][0], dataset.feedback.train_items[1][0]])
        negatives = np.array([5, 6])
        delta = model._feature_perturbation(users, positives, negatives)
        norms = np.linalg.norm(delta, axis=1)
        touched = norms[norms > 1e-9]
        np.testing.assert_allclose(touched, 2.0, atol=1e-9)

    def test_zero_gamma_adversarial_equals_plain(self, dataset, features):
        """γ=0 removes the regularizer: adversarial updates = clean updates."""
        kwargs = dict(epochs=6, seed=9, batch_size=64)
        gamma_zero = AMR(
            dataset.num_users,
            dataset.num_items,
            features,
            AMRConfig(pretrain_epochs=0, gamma=0.0, **kwargs),
        ).fit(dataset.feedback)
        plain = AMR(
            dataset.num_users,
            dataset.num_items,
            features,
            AMRConfig(pretrain_epochs=6, **kwargs),
        ).fit(dataset.feedback)
        np.testing.assert_allclose(gamma_zero.score_all(), plain.score_all(), atol=1e-10)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AMRConfig(gamma=-0.1)
        with pytest.raises(ValueError):
            AMRConfig(eta=-1.0)
        with pytest.raises(ValueError):
            AMRConfig(pretrain_epochs=-1)
