"""Unit tests for BPR sampling and the Recommender base API."""

import numpy as np
import pytest

from repro.data import tiny_dataset
from repro.data.interactions import ImplicitFeedback
from repro.recommenders import BPRMF, BPRMFConfig, BPRTripletSampler, sigmoid


@pytest.fixture(scope="module")
def feedback():
    return tiny_dataset(seed=0, image_size=16).feedback


class TestSampler:
    def test_shapes(self, feedback):
        sampler = BPRTripletSampler(feedback, seed=0)
        users, positives, negatives = sampler.sample(100)
        assert users.shape == positives.shape == negatives.shape == (100,)

    def test_positives_are_train_interactions(self, feedback):
        sampler = BPRTripletSampler(feedback, seed=1)
        users, positives, _ = sampler.sample(500)
        positive_sets = feedback.positive_sets()
        for user, item in zip(users, positives):
            assert item in positive_sets[user]

    def test_negatives_not_in_positives(self, feedback):
        sampler = BPRTripletSampler(feedback, seed=2)
        users, _, negatives = sampler.sample(500)
        positive_sets = feedback.positive_sets()
        for user, item in zip(users, negatives):
            assert item not in positive_sets[user]

    def test_deterministic_given_seed(self, feedback):
        a = BPRTripletSampler(feedback, seed=3).sample(50)
        b = BPRTripletSampler(feedback, seed=3).sample(50)
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    def test_invalid_batch_size(self, feedback):
        with pytest.raises(ValueError):
            BPRTripletSampler(feedback).sample(0)

    def test_empty_feedback_rejected(self):
        empty = ImplicitFeedback(
            num_users=1,
            num_items=3,
            train_items=[np.zeros(0, dtype=np.int64)],
            test_items=np.array([-1]),
        )
        with pytest.raises(ValueError):
            BPRTripletSampler(empty)

    def test_degenerate_user_with_all_items(self):
        fb = ImplicitFeedback(
            num_users=1,
            num_items=3,
            train_items=[np.array([0, 1, 2])],
            test_items=np.array([-1]),
        )
        sampler = BPRTripletSampler(fb, seed=0)
        users, positives, negatives = sampler.sample(10)  # must not hang
        assert len(negatives) == 10


class TestSigmoid:
    def test_midpoint(self):
        assert sigmoid(np.array([0.0]))[0] == pytest.approx(0.5)

    def test_extremes_finite(self):
        out = sigmoid(np.array([-1e6, 1e6]))
        assert np.all(np.isfinite(out))
        np.testing.assert_allclose(out, [0.0, 1.0], atol=1e-12)

    def test_symmetry(self):
        x = np.linspace(-5, 5, 11)
        np.testing.assert_allclose(sigmoid(x) + sigmoid(-x), np.ones(11), atol=1e-12)


class TestRecommenderAPI:
    def test_unfitted_raises(self, feedback):
        model = BPRMF(feedback.num_users, feedback.num_items)
        with pytest.raises(RuntimeError):
            model.score_all()
        with pytest.raises(RuntimeError):
            model.top_n(5)

    def test_universe_validation(self):
        with pytest.raises(ValueError):
            BPRMF(0, 10)

    def test_top_n_excludes_train_positives(self, feedback):
        model = BPRMF(
            feedback.num_users, feedback.num_items, BPRMFConfig(epochs=2)
        ).fit(feedback)
        lists = model.top_n(10, feedback=feedback)
        for user in range(feedback.num_users):
            overlap = set(lists[user].tolist()) & set(feedback.train_items[user].tolist())
            assert not overlap

    def test_top_n_sorted_by_score(self, feedback):
        model = BPRMF(
            feedback.num_users, feedback.num_items, BPRMFConfig(epochs=2)
        ).fit(feedback)
        scores = model.score_all()
        lists = model.top_n(10)
        for user in range(5):
            row = scores[user][lists[user]]
            assert np.all(np.diff(row) <= 1e-12)

    def test_top_n_with_custom_scores(self, feedback):
        model = BPRMF(
            feedback.num_users, feedback.num_items, BPRMFConfig(epochs=1)
        ).fit(feedback)
        custom = np.zeros((feedback.num_users, feedback.num_items))
        custom[:, 7] = 1.0
        lists = model.top_n(1, scores=custom)
        assert np.all(lists[:, 0] == 7)

    def test_top_n_caps_at_num_items(self, feedback):
        model = BPRMF(
            feedback.num_users, feedback.num_items, BPRMFConfig(epochs=1)
        ).fit(feedback)
        lists = model.top_n(10_000)
        assert lists.shape == (feedback.num_users, feedback.num_items)

    def test_top_n_invalid_n(self, feedback):
        model = BPRMF(
            feedback.num_users, feedback.num_items, BPRMFConfig(epochs=1)
        ).fit(feedback)
        with pytest.raises(ValueError):
            model.top_n(0)

    def test_top_n_wrong_score_shape(self, feedback):
        model = BPRMF(
            feedback.num_users, feedback.num_items, BPRMFConfig(epochs=1)
        ).fit(feedback)
        with pytest.raises(ValueError):
            model.top_n(5, scores=np.zeros((2, 2)))


class TestBlockScoring:
    """score_users + top_n(user_ids=...) — the serving-layer satellite."""

    @pytest.fixture(scope="class")
    def model(self, feedback):
        return BPRMF(
            feedback.num_users, feedback.num_items, BPRMFConfig(epochs=5, seed=0)
        ).fit(feedback)

    def test_score_users_matches_score_all_rows(self, model):
        users = [0, 7, 21]
        np.testing.assert_allclose(
            model.score_users(users), model.score_all()[users], rtol=1e-10
        )

    def test_score_users_accepts_scalar(self, model):
        block = model.score_users(3)
        assert block.shape == (1, model.num_items)

    def test_score_users_validates_range(self, model):
        with pytest.raises(ValueError):
            model.score_users([model.num_users])
        with pytest.raises(ValueError):
            model.score_users([-1])
        with pytest.raises(ValueError):
            model.score_users([])

    def test_top_n_block_matches_full(self, model, feedback):
        users = np.array([2, 5, 2, 30])  # duplicates and arbitrary order
        scores = model.score_all()
        full = model.top_n(8, feedback=feedback, scores=scores)
        block = model.top_n(8, feedback=feedback, scores=scores, user_ids=users)
        np.testing.assert_array_equal(block, full[users])

    def test_top_n_block_without_scores(self, model, feedback):
        users = [1, 4]
        full = model.top_n(6, feedback=feedback)
        block = model.top_n(6, feedback=feedback, user_ids=users)
        np.testing.assert_array_equal(block, full[users])

    def test_top_n_block_accepts_block_shaped_scores(self, model, feedback):
        users = np.array([3, 9])
        block_scores = model.score_users(users)
        block = model.top_n(5, feedback=feedback, scores=block_scores, user_ids=users)
        full = model.top_n(5, feedback=feedback)
        np.testing.assert_array_equal(block, full[users])

    def test_top_n_block_excludes_train_positives(self, model, feedback):
        users = [0, 11, 25]
        lists = model.top_n(10, feedback=feedback, user_ids=users)
        for row, user in enumerate(users):
            overlap = set(lists[row].tolist()) & set(
                feedback.train_items[user].tolist()
            )
            assert not overlap

    def test_top_n_block_wrong_score_shape(self, model):
        with pytest.raises(ValueError):
            model.top_n(5, scores=np.zeros((3, 3)), user_ids=[0, 1])

    def test_top_n_block_invalid_users(self, model):
        with pytest.raises(ValueError):
            model.top_n(5, user_ids=[model.num_users])
