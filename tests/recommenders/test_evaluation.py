"""Unit tests for ranking evaluation (HR/nDCG/AUC, per-item ranks)."""

import numpy as np
import pytest

from repro.data.interactions import ImplicitFeedback
from repro.recommenders import BPRMF, BPRMFConfig, evaluate_ranking
from repro.recommenders.evaluation import RankingReport, recommendation_rank_of_item


def make_feedback():
    """2 users, 6 items; user0 tests item 3, user1 tests item 5."""
    return ImplicitFeedback(
        num_users=2,
        num_items=6,
        train_items=[np.array([0, 1]), np.array([2])],
        test_items=np.array([3, 5]),
    )


def fitted_dummy(feedback):
    model = BPRMF(feedback.num_users, feedback.num_items, BPRMFConfig(epochs=1))
    model._fitted = True
    return model


class TestEvaluateRanking:
    def test_perfect_scores_hit(self):
        fb = make_feedback()
        model = fitted_dummy(fb)
        scores = np.zeros((2, 6))
        scores[0, 3] = 10.0
        scores[1, 5] = 10.0
        report = evaluate_ranking(model, fb, cutoff=1, scores=scores)
        assert report.hit_ratio == 1.0
        assert report.ndcg == pytest.approx(1.0)
        assert report.auc == pytest.approx(1.0)

    def test_worst_scores_miss(self):
        fb = make_feedback()
        model = fitted_dummy(fb)
        scores = np.ones((2, 6))
        scores[0, 3] = -10.0
        scores[1, 5] = -10.0
        report = evaluate_ranking(model, fb, cutoff=1, scores=scores)
        assert report.hit_ratio == 0.0
        assert report.auc == pytest.approx(0.0)

    def test_train_items_do_not_block_test_item(self):
        """Even if train positives score higher, they are excluded."""
        fb = make_feedback()
        model = fitted_dummy(fb)
        scores = np.zeros((2, 6))
        scores[0] = [99.0, 98.0, 0.0, 5.0, 1.0, 0.5]  # items 0,1 are train
        scores[1, 5] = 10.0
        report = evaluate_ranking(model, fb, cutoff=1, scores=scores)
        assert report.hit_ratio == 1.0

    def test_users_without_test_item_skipped(self):
        fb = ImplicitFeedback(
            num_users=2,
            num_items=4,
            train_items=[np.array([0]), np.array([1])],
            test_items=np.array([2, -1]),
        )
        model = fitted_dummy(fb)
        report = evaluate_ranking(model, fb, cutoff=2, scores=np.zeros((2, 4)))
        assert report.num_evaluated_users == 1

    def test_no_test_items_returns_zeros(self):
        fb = ImplicitFeedback(
            num_users=1,
            num_items=3,
            train_items=[np.array([0])],
            test_items=np.array([-1]),
        )
        model = fitted_dummy(fb)
        report = evaluate_ranking(model, fb, scores=np.zeros((1, 3)))
        assert report.num_evaluated_users == 0
        assert report.hit_ratio == 0.0

    def test_tie_handling_uses_mid_rank(self):
        fb = ImplicitFeedback(
            num_users=1,
            num_items=5,
            train_items=[np.array([0])],
            test_items=np.array([1]),
        )
        model = fitted_dummy(fb)
        report = evaluate_ranking(model, fb, cutoff=2, scores=np.zeros((1, 5)))
        # All four candidates tie; mid-rank = 2 (ties // 2 + 1) -> hit at cutoff 2.
        assert report.hit_ratio == 1.0

    def test_cutoff_validation(self):
        fb = make_feedback()
        with pytest.raises(ValueError):
            evaluate_ranking(fitted_dummy(fb), fb, cutoff=0, scores=np.zeros((2, 6)))

    def test_score_shape_validation(self):
        fb = make_feedback()
        with pytest.raises(ValueError):
            evaluate_ranking(fitted_dummy(fb), fb, scores=np.zeros((1, 6)))

    def test_as_dict_keys(self):
        report = RankingReport(0.5, 0.4, 0.7, 10, 3)
        d = report.as_dict()
        assert d["HR@10"] == 0.5
        assert d["AUC"] == 0.7


class TestRankOfItem:
    def test_best_item_rank_one(self):
        fb = make_feedback()
        scores = np.zeros((2, 6))
        scores[:, 4] = 5.0
        ranks = recommendation_rank_of_item(scores, fb, item_id=4)
        assert np.all(ranks == 1)

    def test_train_positive_users_excluded(self):
        fb = make_feedback()
        scores = np.zeros((2, 6))
        ranks = recommendation_rank_of_item(scores, fb, item_id=0)
        assert ranks[0] == 0  # user 0 interacted with item 0

    def test_rank_counts_only_non_train_items(self):
        fb = make_feedback()
        scores = np.zeros((2, 6))
        scores[0] = [9.0, 8.0, 1.0, 2.0, 3.0, 0.0]
        # For user 0, items 0 and 1 are train; item 5 is beaten by 2,3,4.
        ranks = recommendation_rank_of_item(scores, fb, item_id=5)
        assert ranks[0] == 4

    def test_out_of_range_item(self):
        fb = make_feedback()
        with pytest.raises(ValueError):
            recommendation_rank_of_item(np.zeros((2, 6)), fb, item_id=6)
