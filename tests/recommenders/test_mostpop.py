"""Unit tests for the MostPop baseline."""

import numpy as np
import pytest

from repro.data import tiny_dataset
from repro.recommenders import MostPop, evaluate_ranking


@pytest.fixture(scope="module")
def dataset():
    return tiny_dataset(seed=0, image_size=16)


class TestMostPop:
    def test_scores_are_popularity(self, dataset):
        model = MostPop(dataset.num_users, dataset.num_items).fit(dataset.feedback)
        scores = model.score_all()
        counts = dataset.feedback.item_interaction_counts()
        np.testing.assert_allclose(scores[0], counts)
        np.testing.assert_allclose(scores[5], counts)

    def test_same_ranking_for_all_users_before_filtering(self, dataset):
        model = MostPop(dataset.num_users, dataset.num_items).fit(dataset.feedback)
        lists = model.top_n(5)  # no feedback filter
        assert np.all(lists == lists[0])

    def test_ranking_quality_above_chance(self, dataset):
        model = MostPop(dataset.num_users, dataset.num_items).fit(dataset.feedback)
        report = evaluate_ranking(model, dataset.feedback, cutoff=10)
        assert report.auc > 0.5

    def test_unfitted_raises(self, dataset):
        with pytest.raises(RuntimeError):
            MostPop(dataset.num_users, dataset.num_items).score_all()

    def test_wrong_universe(self, dataset):
        with pytest.raises(ValueError):
            MostPop(dataset.num_users + 1, dataset.num_items).fit(dataset.feedback)

    def test_attack_immune_scores(self, dataset):
        """MostPop ignores images: there is no feature pathway to attack."""
        model = MostPop(dataset.num_users, dataset.num_items).fit(dataset.feedback)
        before = model.score_all()
        # "Attack" the catalog: scores cannot change because fit() consumed
        # only interactions.
        after = model.score_all()
        np.testing.assert_array_equal(before, after)
