"""Unit tests for exposure/diversity metrics."""

import numpy as np
import pytest

from repro.recommenders.exposure import catalog_coverage, gini_exposure, item_exposure


class TestItemExposure:
    def test_counts(self):
        lists = np.array([[0, 1], [1, 2]])
        np.testing.assert_array_equal(item_exposure(lists, 4), [1, 2, 1, 0])

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="outside the catalog"):
            item_exposure(np.array([[5]]), 3)

    def test_negative_ids_rejected_with_clear_message(self):
        # np.bincount would otherwise fail with an opaque error.
        with pytest.raises(ValueError, match="negative item ids"):
            item_exposure(np.array([[0, -3]]), 3)

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            item_exposure(np.array([1, 2]), 3)


class TestCoverage:
    def test_full_coverage(self):
        lists = np.array([[0, 1], [2, 3]])
        assert catalog_coverage(lists, 4) == 1.0

    def test_partial_coverage(self):
        lists = np.array([[0, 0], [0, 0]])
        assert catalog_coverage(lists, 4) == pytest.approx(0.25)

    def test_invalid_num_items(self):
        with pytest.raises(ValueError):
            catalog_coverage(np.array([[0]]), 0)


class TestGini:
    def test_uniform_exposure_is_zero(self):
        lists = np.array([[0, 1], [2, 3]])
        assert gini_exposure(lists, 4) == pytest.approx(0.0, abs=1e-12)

    def test_concentrated_exposure_near_one(self):
        lists = np.tile([0], (50, 1))  # every slot on item 0
        assert gini_exposure(lists, 100) > 0.9

    def test_empty_exposure(self):
        # num_items > 0 but lists reference item 0 only once among many items
        assert gini_exposure(np.zeros((0, 1), dtype=int), 5) == 0.0

    def test_monotone_under_concentration(self):
        even = np.array([[0, 1, 2, 3]])
        skewed = np.array([[0, 0, 0, 1]])
        assert gini_exposure(skewed, 4) > gini_exposure(even, 4)

    def test_bounded(self):
        rng = np.random.default_rng(0)
        lists = rng.integers(0, 30, size=(20, 10))
        value = gini_exposure(lists, 30)
        assert 0.0 <= value <= 1.0

    def test_realistic_recommender_is_skewed(self):
        """The substrate premise: VBPR exposure is concentrated."""
        from repro.data import tiny_dataset
        from repro.recommenders import BPRMF, BPRMFConfig

        ds = tiny_dataset(seed=0, image_size=16)
        model = BPRMF(ds.num_users, ds.num_items, BPRMFConfig(epochs=20)).fit(ds.feedback)
        lists = model.top_n(10, feedback=ds.feedback)
        assert gini_exposure(lists, ds.num_items) > 0.2
