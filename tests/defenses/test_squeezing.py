"""Unit tests for the feature-squeezing defense."""

import numpy as np
import pytest

from repro.attacks import PGD, epsilon_from_255
from repro.data import amazon_men_like
from repro.defenses import FeatureSqueezer, median_smooth, reduce_bit_depth
from repro.features import ClassifierConfig, train_catalog_classifier

RNG = np.random.default_rng(4)


class TestBitDepth:
    def test_quantises_to_levels(self):
        images = RNG.random((2, 3, 4, 4))
        out = reduce_bit_depth(images, bits=1)
        assert set(np.unique(out)).issubset({0.0, 1.0})

    def test_eight_bits_near_identity(self):
        images = RNG.random((1, 3, 4, 4))
        out = reduce_bit_depth(images, bits=8)
        assert np.abs(out - images).max() <= 1.0 / (2 * 255)

    def test_idempotent(self):
        images = RNG.random((1, 3, 4, 4))
        once = reduce_bit_depth(images, bits=3)
        np.testing.assert_allclose(reduce_bit_depth(once, bits=3), once)

    def test_validation(self):
        with pytest.raises(ValueError):
            reduce_bit_depth(np.zeros((1, 1, 2, 2)), bits=0)
        with pytest.raises(ValueError):
            reduce_bit_depth(np.zeros((1, 1, 2, 2)), bits=9)


class TestMedianSmooth:
    def test_removes_salt_noise(self):
        images = np.full((1, 1, 8, 8), 0.5)
        images[0, 0, 4, 4] = 1.0  # single outlier pixel
        out = median_smooth(images, kernel=3)
        assert out[0, 0, 4, 4] == pytest.approx(0.5)

    def test_constant_image_unchanged(self):
        images = np.full((2, 3, 6, 6), 0.3)
        np.testing.assert_allclose(median_smooth(images), images)

    def test_shape_preserved(self):
        images = RNG.random((2, 3, 7, 9))
        assert median_smooth(images, kernel=3).shape == images.shape

    def test_validation(self):
        with pytest.raises(ValueError):
            median_smooth(np.zeros((1, 1, 4, 4)), kernel=2)
        with pytest.raises(ValueError):
            median_smooth(np.zeros((4, 4)), kernel=3)


class TestFeatureSqueezer:
    @pytest.fixture(scope="class")
    def trained(self):
        ds = amazon_men_like(scale=0.0025, image_size=24, seed=1)
        model, _ = train_catalog_classifier(
            ds.images,
            ds.item_categories,
            ds.num_categories,
            widths=(8, 16),
            blocks_per_stage=(1, 1),
            config=ClassifierConfig(epochs=20, batch_size=32, learning_rate=0.08, seed=0),
        )
        return ds, model

    def test_requires_one_squeezer(self):
        with pytest.raises(ValueError):
            FeatureSqueezer(bits=None, median_kernel=None)

    def test_clean_predictions_mostly_survive(self, trained):
        ds, model = trained
        squeezer = FeatureSqueezer(bits=5, median_kernel=3)
        raw = model.predict(ds.images[:40])
        squeezed = squeezer.predict(model, ds.images[:40])
        assert (raw == squeezed).mean() > 0.7

    def test_detection_scores_higher_for_adversarial(self, trained):
        """The core feature-squeezing claim: attacked inputs disagree more."""
        ds, model = trained
        socks = ds.items_in_category("sock")[:10]
        target = ds.registry.by_name("running_shoe").category_id
        attack = PGD(model, epsilon_from_255(32), num_steps=10, seed=0)
        adversarial = attack.attack(ds.images[socks], target_class=target)

        squeezer = FeatureSqueezer(bits=4, median_kernel=3)
        clean_scores = squeezer.detection_scores(model, ds.images[socks])
        attacked_scores = squeezer.detection_scores(
            model, adversarial.adversarial_images
        )
        assert attacked_scores.mean() > clean_scores.mean()

    def test_squeezing_reduces_attack_success(self, trained):
        """Squeezing before extraction blunts part of the perturbation."""
        ds, model = trained
        socks = ds.items_in_category("sock")[:10]
        target = ds.registry.by_name("running_shoe").category_id
        attack = PGD(model, epsilon_from_255(32), num_steps=10, seed=0)
        adversarial = attack.attack(ds.images[socks], target_class=target)
        raw_success = (adversarial.adversarial_predictions == target).mean()

        squeezer = FeatureSqueezer(bits=4, median_kernel=3)
        squeezed_success = (
            squeezer.predict(model, adversarial.adversarial_images) == target
        ).mean()
        assert squeezed_success <= raw_success
