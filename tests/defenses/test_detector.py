"""Unit tests for the PCA reconstruction-error attack detector."""

import numpy as np
import pytest

from repro.defenses import ReconstructionDetector
from repro.rng import rng_from_seed


def low_rank_vectors(n=200, dim=32, rank=4, noise=0.01, seed=0):
    """Clean vectors near a rank-``rank`` manifold, as catalog features are."""
    rng = rng_from_seed(seed)
    latent = rng.normal(0.0, 1.0, (n, rank))
    mixing = rng.normal(0.0, 1.0, (rank, dim))
    return latent @ mixing + rng.normal(0.0, noise, (n, dim))


@pytest.fixture(scope="module")
def clean():
    return low_rank_vectors()


@pytest.fixture(scope="module")
def fitted(clean):
    detector = ReconstructionDetector(num_components=4)
    detector.fit(clean)
    detector.calibrate(clean, target_fpr=0.05)
    return detector


class TestFitAndScore:
    def test_clean_scores_are_small(self, fitted, clean):
        # Rank-4 data under a rank-4 model: only the noise floor remains.
        assert fitted.score(clean).max() < 0.1

    def test_off_manifold_scores_are_large(self, fitted, clean):
        rng = rng_from_seed(1)
        perturbed = clean[:20] + rng.normal(0.0, 1.0, clean[:20].shape)
        assert fitted.score(perturbed).min() > fitted.score(clean).max()

    def test_reconstruct_is_idempotent(self, fitted, clean):
        once = fitted.reconstruct(clean)
        np.testing.assert_allclose(fitted.reconstruct(once), once, atol=1e-10)

    def test_reconstruct_keeps_input_shape(self, fitted, clean):
        cube = clean[:8].reshape(8, 4, 8)
        assert fitted.reconstruct(cube).shape == (8, 4, 8)

    def test_full_rank_model_reconstructs_exactly(self):
        vectors = low_rank_vectors(n=50, dim=6, rank=6, noise=0.2)
        detector = ReconstructionDetector(num_components=50).fit(vectors)
        # num_components caps at min(n, dim): nothing left to flag.
        np.testing.assert_allclose(detector.score(vectors), 0.0, atol=1e-10)

    def test_refit_is_deterministic(self, clean):
        a = ReconstructionDetector(num_components=4).fit(clean)
        b = ReconstructionDetector(num_components=4).fit(clean)
        np.testing.assert_array_equal(a.score(clean), b.score(clean))
        np.testing.assert_array_equal(a._components, b._components)


class TestCalibrateAndFlag:
    def test_clean_fpr_near_target(self, fitted, clean):
        flags = fitted.flag(clean)
        assert 0.0 <= flags.mean() <= 0.06  # the (1 − fpr) quantile cut

    def test_adversarial_flagged(self, fitted, clean):
        rng = rng_from_seed(2)
        perturbed = clean[:20] + rng.normal(0.0, 1.0, clean[:20].shape)
        assert fitted.flag(perturbed).all()

    def test_calibrate_returns_threshold(self, clean):
        detector = ReconstructionDetector(num_components=4).fit(clean)
        threshold = detector.calibrate(clean, target_fpr=0.1)
        assert threshold == detector.threshold
        scores = detector.score(clean)
        assert threshold == pytest.approx(np.quantile(scores, 0.9))

    def test_tighter_fpr_raises_threshold(self, clean):
        detector = ReconstructionDetector(num_components=4).fit(clean)
        loose = detector.calibrate(clean, target_fpr=0.2)
        tight = detector.calibrate(clean, target_fpr=0.01)
        assert tight > loose


class TestValidation:
    def test_bad_constructor_args(self):
        with pytest.raises(ValueError):
            ReconstructionDetector(num_components=0)
        with pytest.raises(ValueError):
            ReconstructionDetector(threshold=-1.0)

    def test_unfitted_rejected(self, clean):
        detector = ReconstructionDetector()
        assert not detector.is_fitted
        with pytest.raises(RuntimeError):
            detector.score(clean)
        with pytest.raises(RuntimeError):
            detector.reconstruct(clean)

    def test_uncalibrated_flag_rejected(self, clean):
        detector = ReconstructionDetector(num_components=4).fit(clean)
        with pytest.raises(RuntimeError):
            detector.flag(clean)

    def test_dim_mismatch_rejected(self, fitted):
        with pytest.raises(ValueError):
            fitted.score(np.zeros((3, 7)))

    def test_needs_a_batch(self, fitted, clean):
        with pytest.raises(ValueError):
            fitted.score(clean[0])
        with pytest.raises(ValueError):
            ReconstructionDetector().fit(clean[:1])

    def test_bad_fpr_rejected(self, fitted, clean):
        for fpr in (0.0, 1.0, -0.1):
            with pytest.raises(ValueError):
                fitted.calibrate(clean, target_fpr=fpr)
