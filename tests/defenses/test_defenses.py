"""Unit tests for adversarial training and defensive distillation."""

import numpy as np
import pytest

from repro.attacks import PGD
from repro.data import amazon_men_like
from repro.defenses import (
    AdversarialTrainer,
    AdversarialTrainingConfig,
    DistillationConfig,
    distill,
    soft_labels,
)
from repro.features import ClassifierConfig, train_catalog_classifier
from repro.nn import TinyResNet


@pytest.fixture(scope="module")
def setup():
    ds = amazon_men_like(scale=0.002, image_size=16, seed=4)
    model, _ = train_catalog_classifier(
        ds.images,
        ds.item_categories,
        ds.num_categories,
        widths=(8, 16),
        blocks_per_stage=(1, 1),
        config=ClassifierConfig(epochs=12, batch_size=32, learning_rate=0.08, seed=0),
    )
    return ds, model


class TestAdversarialTraining:
    def test_improves_robust_accuracy(self, setup):
        ds, _ = setup
        eps = 12 / 255

        # Baseline: standard training, measure PGD-robust accuracy.
        baseline, _ = train_catalog_classifier(
            ds.images,
            ds.item_categories,
            ds.num_categories,
            widths=(8, 16),
            blocks_per_stage=(1, 1),
            config=ClassifierConfig(epochs=8, batch_size=32, learning_rate=0.08, seed=1),
        )
        attack = PGD(baseline, eps, num_steps=5, seed=0)
        result = attack.attack(ds.images, true_labels=ds.item_categories)
        baseline_robust = (result.adversarial_predictions == ds.item_categories).mean()

        robust_model = TinyResNet(
            ds.num_categories, widths=(8, 16), blocks_per_stage=(1, 1), seed=1
        )
        history = AdversarialTrainer(
            robust_model,
            AdversarialTrainingConfig(
                epochs=8, batch_size=32, epsilon=eps, attack_steps=3, seed=1
            ),
        ).fit(ds.images, ds.item_categories)
        assert history["adversarial_accuracy"][-1] > baseline_robust

    def test_history_fields(self, setup):
        ds, _ = setup
        model = TinyResNet(ds.num_categories, widths=(8,), blocks_per_stage=(1,), seed=0)
        history = AdversarialTrainer(
            model, AdversarialTrainingConfig(epochs=2, attack_steps=2)
        ).fit(ds.images[:40], ds.item_categories[:40])
        assert len(history["loss"]) == 2
        assert 0.0 <= history["clean_accuracy"][-1] <= 1.0
        assert 0.0 <= history["adversarial_accuracy"][-1] <= 1.0

    def test_validation(self, setup):
        ds, _ = setup
        model = TinyResNet(ds.num_categories, widths=(8,), blocks_per_stage=(1,))
        trainer = AdversarialTrainer(model, AdversarialTrainingConfig(epochs=1))
        with pytest.raises(ValueError):
            trainer.fit(ds.images[:4], ds.item_categories[:3])
        with pytest.raises(ValueError):
            AdversarialTrainingConfig(adversarial_weight=2.0)
        with pytest.raises(ValueError):
            AdversarialTrainingConfig(epsilon=3.0)
        with pytest.raises(ValueError):
            AdversarialTrainingConfig(attack_steps=0)


class TestDistillation:
    def test_soft_labels_are_distributions(self, setup):
        ds, model = setup
        probs = soft_labels(model, ds.images[:10], temperature=10.0)
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(10), atol=1e-6)

    def test_higher_temperature_softer(self, setup):
        ds, model = setup
        sharp = soft_labels(model, ds.images[:10], temperature=1.0)
        soft = soft_labels(model, ds.images[:10], temperature=20.0)
        assert soft.max() < sharp.max() + 1e-12
        assert soft.max(axis=1).mean() < sharp.max(axis=1).mean()

    def test_invalid_temperature(self, setup):
        ds, model = setup
        with pytest.raises(ValueError):
            soft_labels(model, ds.images[:2], temperature=0.0)
        with pytest.raises(ValueError):
            DistillationConfig(temperature=-1.0)

    def test_student_matches_teacher_architecture(self, setup):
        ds, model = setup
        student, losses = distill(
            model, ds.images, DistillationConfig(epochs=3, temperature=5.0)
        )
        assert student.num_classes == model.num_classes
        assert student.feature_dim == model.feature_dim
        assert len(losses) == 3
        assert losses[-1] < losses[0]

    def test_student_learns_teacher_predictions(self, setup):
        ds, model = setup
        student, _ = distill(
            model, ds.images, DistillationConfig(epochs=10, temperature=5.0)
        )
        teacher_preds = model.predict(ds.images)
        student_preds = student.predict(ds.images)
        agreement = (teacher_preds == student_preds).mean()
        assert agreement > 0.7

    def test_rejects_bad_images(self, setup):
        _, model = setup
        with pytest.raises(ValueError):
            distill(model, np.zeros((4, 3, 8)), DistillationConfig(epochs=1))
