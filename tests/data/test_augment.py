"""Unit tests for image augmentation transforms."""

import numpy as np
import pytest

from repro.data.augment import (
    AugmentationPipeline,
    default_augmentation,
    random_brightness,
    random_crop_with_pad,
    random_gaussian_noise,
    random_horizontal_flip,
)

RNG_SEED = 0


def batch(n=6, size=8):
    return np.random.default_rng(1).random((n, 3, size, size))


class TestFlip:
    def test_probability_one_flips_everything(self):
        images = batch()
        out = random_horizontal_flip(1.0)(images, np.random.default_rng(0))
        np.testing.assert_array_equal(out, images[:, :, :, ::-1])

    def test_probability_zero_identity(self):
        images = batch()
        out = random_horizontal_flip(0.0)(images, np.random.default_rng(0))
        np.testing.assert_array_equal(out, images)

    def test_does_not_mutate_input(self):
        images = batch()
        original = images.copy()
        random_horizontal_flip(1.0)(images, np.random.default_rng(0))
        np.testing.assert_array_equal(images, original)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            random_horizontal_flip(1.5)


class TestCrop:
    def test_output_shape_preserved(self):
        images = batch()
        out = random_crop_with_pad(2)(images, np.random.default_rng(0))
        assert out.shape == images.shape

    def test_zero_pad_identity(self):
        images = batch()
        out = random_crop_with_pad(0)(images, np.random.default_rng(0))
        np.testing.assert_array_equal(out, images)

    def test_content_is_shifted_window(self):
        """Some inner region of the original must survive the crop."""
        images = batch(n=1, size=8)
        out = random_crop_with_pad(1)(images, np.random.default_rng(3))
        # The centre 6x6 of the output appears somewhere in the padded input.
        inner = out[0, :, 1:7, 1:7]
        found = any(
            np.allclose(inner, images[0, :, y : y + 6, x : x + 6])
            for y in range(3)
            for x in range(3)
        )
        assert found

    def test_negative_pad(self):
        with pytest.raises(ValueError):
            random_crop_with_pad(-1)


class TestBrightnessAndNoise:
    def test_brightness_bounded(self):
        images = batch()
        out = random_brightness(0.2)(images, np.random.default_rng(0))
        assert np.abs(out - images).max() <= 0.2 + 1e-12
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_noise_zero_sigma_identity(self):
        images = batch()
        out = random_gaussian_noise(0.0)(images, np.random.default_rng(0))
        np.testing.assert_array_equal(out, images)

    def test_noise_changes_pixels(self):
        images = batch()
        out = random_gaussian_noise(0.05)(images, np.random.default_rng(0))
        assert not np.allclose(out, images)

    def test_validation(self):
        with pytest.raises(ValueError):
            random_brightness(-0.1)
        with pytest.raises(ValueError):
            random_gaussian_noise(-0.1)


class TestPipeline:
    def test_deterministic_given_seed(self):
        images = batch()
        a = default_augmentation(seed=7)(images)
        b = default_augmentation(seed=7)(images)
        np.testing.assert_array_equal(a, b)

    def test_reset_restores_stream(self):
        pipeline = default_augmentation(seed=7)
        images = batch()
        first = pipeline(images)
        pipeline.reset()
        np.testing.assert_array_equal(pipeline(images), first)

    def test_requires_nchw(self):
        with pytest.raises(ValueError):
            default_augmentation()(np.zeros((3, 8, 8)))

    def test_output_in_valid_range(self):
        out = default_augmentation()(batch())
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_empty_transform_list_is_identity(self):
        images = batch()
        np.testing.assert_array_equal(AugmentationPipeline([], seed=0)(images), images)


class TestTrainerIntegration:
    def test_augmented_training_runs_and_learns(self):
        from repro.data import tiny_dataset
        from repro.features import ClassifierConfig, train_catalog_classifier

        ds = tiny_dataset(seed=0, image_size=16)
        model, report = train_catalog_classifier(
            ds.images,
            ds.item_categories,
            ds.num_categories,
            widths=(8, 16),
            blocks_per_stage=(1, 1),
            config=ClassifierConfig(epochs=10, batch_size=16, augment=True, seed=0),
        )
        assert report.train_losses[-1] < report.train_losses[0]
        assert report.final_train_accuracy > 0.5
