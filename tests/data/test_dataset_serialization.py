"""Unit tests for dataset save/load round-trips."""

import os

import numpy as np
import pytest

from repro.data import tiny_dataset
from repro.data.serialization import load_dataset, save_dataset


@pytest.fixture(scope="module")
def dataset():
    return tiny_dataset(seed=3, image_size=16)


class TestRoundTrip:
    def test_images_and_categories_identical(self, dataset, tmp_path):
        path = os.path.join(tmp_path, "ds.npz")
        save_dataset(dataset, path)
        loaded = load_dataset(path)
        np.testing.assert_array_equal(loaded.images, dataset.images)
        np.testing.assert_array_equal(loaded.item_categories, dataset.item_categories)
        assert loaded.name == dataset.name

    def test_feedback_identical(self, dataset, tmp_path):
        path = os.path.join(tmp_path, "ds.npz")
        save_dataset(dataset, path)
        loaded = load_dataset(path)
        np.testing.assert_array_equal(
            loaded.feedback.test_items, dataset.feedback.test_items
        )
        for a, b in zip(loaded.feedback.train_items, dataset.feedback.train_items):
            np.testing.assert_array_equal(a, b)
        loaded.feedback.validate_split()

    def test_registry_preserved(self, dataset, tmp_path):
        path = os.path.join(tmp_path, "ds.npz")
        save_dataset(dataset, path)
        loaded = load_dataset(path)
        assert loaded.registry.names == dataset.registry.names
        assert loaded.registry.semantically_similar("sock", "running_shoe")

    def test_stats_preserved(self, dataset, tmp_path):
        path = os.path.join(tmp_path, "ds.npz")
        save_dataset(dataset, path)
        assert load_dataset(path).stats() == dataset.stats()

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_dataset(os.path.join(tmp_path, "nope.npz"))

    def test_version_check(self, dataset, tmp_path):
        import json

        from repro.artifacts import ArtifactSchemaError

        path = os.path.join(tmp_path, "ds.npz")
        save_dataset(dataset, path)
        with np.load(path) as archive:
            payload = {key: archive[key] for key in archive.files}
        header = json.loads(str(payload["__artifact__"]))
        header["schema_version"] = 99
        payload["__artifact__"] = np.array(json.dumps(header))
        np.savez_compressed(path, **payload)
        with pytest.raises(ArtifactSchemaError, match="schema version 99"):
            load_dataset(path)

    def test_corrupted_payload_refused(self, dataset, tmp_path):
        from repro.artifacts import ArtifactIntegrityError

        path = os.path.join(tmp_path, "ds.npz")
        save_dataset(dataset, path)
        with np.load(path) as archive:
            payload = {key: archive[key] for key in archive.files}
        payload["images"] = payload["images"] + 1.0
        np.savez_compressed(path, **payload)
        with pytest.raises(ArtifactIntegrityError, match="does not match"):
            load_dataset(path)

    def test_fingerprint_check(self, dataset, tmp_path):
        from repro.artifacts import FingerprintMismatchError

        path = os.path.join(tmp_path, "ds.npz")
        save_dataset(dataset, path, fingerprint="abc123")
        assert load_dataset(path, fingerprint="abc123").name == dataset.name
        with pytest.raises(FingerprintMismatchError):
            load_dataset(path, fingerprint="def456")

    def test_pre_protocol_file_refused(self, dataset, tmp_path):
        """A bare .npz without the artifact envelope must not load."""
        from repro.artifacts import ArtifactSchemaError

        path = os.path.join(tmp_path, "legacy.npz")
        np.savez(path, images=dataset.images)
        with pytest.raises(ArtifactSchemaError, match="envelope"):
            load_dataset(path)

    def test_loaded_dataset_usable_downstream(self, dataset, tmp_path):
        """The round-tripped dataset must drive the pipeline unchanged."""
        from repro.recommenders import BPRMF, BPRMFConfig, evaluate_ranking

        path = os.path.join(tmp_path, "ds.npz")
        save_dataset(dataset, path)
        loaded = load_dataset(path)
        model = BPRMF(
            loaded.num_users, loaded.num_items, BPRMFConfig(epochs=2, seed=0)
        ).fit(loaded.feedback)
        report = evaluate_ranking(model, loaded.feedback, cutoff=10)
        assert report.num_evaluated_users == loaded.num_users
