"""Unit tests for dataset assembly and paper-like presets."""

import numpy as np
import pytest

from repro.data import (
    MultimediaDataset,
    PAPER_SIZES,
    amazon_men_like,
    amazon_women_like,
    build_dataset,
    men_registry,
    tiny_dataset,
)


@pytest.fixture(scope="module")
def tiny():
    return tiny_dataset(seed=0, image_size=16)


class TestBuildDataset:
    def test_tiny_shapes(self, tiny):
        assert tiny.num_users == 40
        assert tiny.num_items == 64
        assert tiny.images.shape == (64, 3, 16, 16)
        assert tiny.item_categories.shape == (64,)

    def test_every_category_has_items(self, tiny):
        counts = tiny.category_item_counts()
        assert all(count >= 2 for count in counts.values())

    def test_items_in_category(self, tiny):
        socks = tiny.items_in_category("sock")
        sock_id = tiny.registry.by_name("sock").category_id
        assert np.all(tiny.item_categories[socks] == sock_id)
        assert socks.size == tiny.category_item_counts()["sock"]

    def test_stats_fields(self, tiny):
        stats = tiny.stats()
        assert stats["users"] == 40
        assert stats["items"] == 64
        assert stats["interactions"] >= 5 * 40
        assert 0 < stats["density"] < 1
        assert stats["interactions_per_user"] >= 5

    def test_deterministic(self):
        a = tiny_dataset(seed=7, image_size=16)
        b = tiny_dataset(seed=7, image_size=16)
        np.testing.assert_array_equal(a.images, b.images)
        np.testing.assert_array_equal(a.item_categories, b.item_categories)

    def test_validation_catches_mismatches(self, tiny):
        with pytest.raises(ValueError):
            MultimediaDataset(
                name="broken",
                registry=tiny.registry,
                item_categories=tiny.item_categories[:-1],
                images=tiny.images,
                feedback=tiny.feedback,
            )

    def test_zero_users_rejected(self):
        with pytest.raises(ValueError):
            build_dataset("x", men_registry(), num_users=0, num_items=10)


class TestPaperPresets:
    def test_men_scales_paper_sizes(self):
        ds = amazon_men_like(scale=0.003, image_size=16)
        assert ds.num_users == int(PAPER_SIZES["amazon_men"]["users"] * 0.003)
        assert ds.num_items == int(PAPER_SIZES["amazon_men"]["items"] * 0.003)

    def test_women_uses_women_registry(self):
        ds = amazon_women_like(scale=0.002, image_size=16)
        assert "maillot" in ds.registry.names
        assert "brassiere" in ds.registry.names

    def test_interactions_per_user_near_paper(self):
        """Paper: |S|/|U| ≈ 7.4 (men), 7.45 (women)."""
        ds = amazon_men_like(scale=0.005, image_size=16)
        per_user = ds.stats()["interactions_per_user"]
        assert 5.5 < per_user < 10.0

    def test_men_dataset_sparsity_shape(self):
        """Synthetic data must stay sparse like the paper's (density << 1%)."""
        ds = amazon_men_like(scale=0.01, image_size=16)
        assert ds.stats()["density"] < 0.05

    def test_scale_must_be_positive(self):
        with pytest.raises(ValueError):
            amazon_men_like(scale=0.0)
        with pytest.raises(ValueError):
            amazon_women_like(scale=-1.0)

    def test_minimum_floor_sizes(self):
        ds = amazon_men_like(scale=1e-9, image_size=16)
        assert ds.num_users >= 8
        assert ds.num_items >= 24
