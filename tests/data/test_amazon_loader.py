"""Unit tests for the real-data (McAuley Amazon format) loader."""

import gzip
import json
import os

import numpy as np
import pytest

from repro.data.amazon import (
    Review,
    build_feedback_from_reviews,
    categories_for_items,
    load_amazon_metadata,
    load_amazon_reviews,
)


def write_jsonl(path, records, compress=False):
    opener = gzip.open if compress else open
    with opener(path, "wt", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record) + "\n")


@pytest.fixture()
def review_file(tmp_path):
    """Synthetic McAuley-format reviews: 2 heavy users + 1 cold user."""
    records = []
    for item in range(6):
        records.append(
            {"reviewerID": "alice", "asin": f"B00{item}", "overall": 5.0,
             "unixReviewTime": 1_400_000_000 + item}
        )
    for item in range(5):
        records.append({"reviewerID": "bob", "asin": f"B00{item}", "overall": 3.0})
    records.append({"reviewerID": "carol", "asin": "B000", "overall": 1.0})
    path = os.path.join(tmp_path, "reviews.json")
    write_jsonl(path, records)
    return path


class TestLoadReviews:
    def test_parses_records(self, review_file):
        reviews = load_amazon_reviews(review_file)
        assert len(reviews) == 12
        assert reviews[0] == Review("alice", "B000", 5.0, 1_400_000_000)

    def test_gzip_supported(self, tmp_path):
        path = os.path.join(tmp_path, "reviews.json.gz")
        write_jsonl(path, [{"reviewerID": "u", "asin": "a", "overall": 4.0}], compress=True)
        reviews = load_amazon_reviews(path)
        assert reviews[0].user == "u"

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_amazon_reviews(os.path.join(tmp_path, "nope.json"))

    def test_malformed_line_reports_position(self, tmp_path):
        path = os.path.join(tmp_path, "bad.json")
        with open(path, "w") as handle:
            handle.write('{"reviewerID": "u", "asin": "a", "overall": 4.0}\n')
            handle.write("{not json}\n")
        with pytest.raises(ValueError, match=":2:"):
            load_amazon_reviews(path)

    def test_missing_field(self, tmp_path):
        path = os.path.join(tmp_path, "short.json")
        write_jsonl(path, [{"reviewerID": "u", "overall": 4.0}])
        with pytest.raises(ValueError, match="missing field"):
            load_amazon_reviews(path)

    def test_blank_lines_ignored(self, tmp_path):
        path = os.path.join(tmp_path, "blank.json")
        with open(path, "w") as handle:
            handle.write('{"reviewerID": "u", "asin": "a", "overall": 4.0}\n\n')
        assert len(load_amazon_reviews(path)) == 1


class TestLoadMetadata:
    def test_parses_category_leaf_and_url(self, tmp_path):
        path = os.path.join(tmp_path, "meta.json")
        write_jsonl(
            path,
            [
                {
                    "asin": "B000",
                    "categories": [["Clothing", "Men", "Socks"]],
                    "imUrl": "http://example.com/sock.jpg",
                }
            ],
        )
        metadata = load_amazon_metadata(path)
        assert metadata["B000"]["category"] == "Socks"
        assert metadata["B000"]["image_url"].endswith("sock.jpg")

    def test_missing_categories_default_unknown(self, tmp_path):
        path = os.path.join(tmp_path, "meta.json")
        write_jsonl(path, [{"asin": "B001"}])
        assert load_amazon_metadata(path)["B001"]["category"] == "unknown"

    def test_missing_asin_rejected(self, tmp_path):
        path = os.path.join(tmp_path, "meta.json")
        write_jsonl(path, [{"imUrl": "x"}])
        with pytest.raises(ValueError, match="asin"):
            load_amazon_metadata(path)


class TestBuildFeedback:
    def test_cold_users_dropped(self, review_file):
        reviews = load_amazon_reviews(review_file)
        feedback, users, items = build_feedback_from_reviews(reviews)
        assert users == ["alice", "bob"]  # carol has 1 interaction
        assert feedback.num_users == 2

    def test_item_universe_excludes_dropped_only_items(self, tmp_path):
        records = [
            {"reviewerID": "cold", "asin": "LONELY", "overall": 5.0}
        ] + [
            {"reviewerID": "warm", "asin": f"A{i}", "overall": 5.0} for i in range(5)
        ]
        path = os.path.join(tmp_path, "r.json")
        write_jsonl(path, records)
        _, _, items = build_feedback_from_reviews(load_amazon_reviews(path))
        assert "LONELY" not in items

    def test_ratings_binarised(self, review_file):
        """A 1-star and a 5-star review both count as one interaction."""
        reviews = load_amazon_reviews(review_file)
        feedback, users, _ = build_feedback_from_reviews(reviews)
        alice = users.index("alice")
        total = len(feedback.train_items[alice]) + 1
        assert total == 6  # six distinct items regardless of ratings

    def test_leave_one_out_valid(self, review_file):
        reviews = load_amazon_reviews(review_file)
        feedback, _, _ = build_feedback_from_reviews(reviews)
        feedback.validate_split()
        assert np.all(feedback.test_items >= 0)

    def test_duplicate_reviews_collapse(self, tmp_path):
        records = [
            {"reviewerID": "u", "asin": "A0", "overall": 5.0},
            {"reviewerID": "u", "asin": "A0", "overall": 2.0},
        ] + [{"reviewerID": "u", "asin": f"A{i}", "overall": 4.0} for i in range(1, 5)]
        path = os.path.join(tmp_path, "r.json")
        write_jsonl(path, records)
        feedback, _, items = build_feedback_from_reviews(load_amazon_reviews(path))
        assert len(items) == 5

    def test_all_cold_raises(self, tmp_path):
        path = os.path.join(tmp_path, "r.json")
        write_jsonl(path, [{"reviewerID": "u", "asin": "a", "overall": 5.0}])
        with pytest.raises(ValueError, match="no user"):
            build_feedback_from_reviews(load_amazon_reviews(path))

    def test_deterministic_given_seed(self, review_file):
        reviews = load_amazon_reviews(review_file)
        a, _, _ = build_feedback_from_reviews(reviews, seed=7)
        b, _, _ = build_feedback_from_reviews(reviews, seed=7)
        np.testing.assert_array_equal(a.test_items, b.test_items)

    def test_min_interactions_validation(self, review_file):
        with pytest.raises(ValueError):
            build_feedback_from_reviews([], min_interactions=0)


class TestCategoriesForItems:
    def test_maps_to_dense_ids(self):
        metadata = {
            "A": {"category": "Socks"},
            "B": {"category": "Shoes"},
            "C": {"category": "Socks"},
        }
        ids, names = categories_for_items(["A", "B", "C"], metadata)
        assert names == ["Shoes", "Socks"]
        np.testing.assert_array_equal(ids, [1, 0, 1])

    def test_unknown_item_gets_unknown_category(self):
        ids, names = categories_for_items(["MISSING"], {})
        assert names == ["unknown"]
        assert ids[0] == 0

    def test_pinned_category_order(self):
        metadata = {"A": {"category": "Socks"}}
        ids, names = categories_for_items(["A"], metadata, ["Shoes", "Socks"])
        assert ids[0] == 1
        assert names == ["Shoes", "Socks"]

    def test_pinned_order_missing_category_raises(self):
        metadata = {"A": {"category": "Hats"}}
        with pytest.raises(KeyError):
            categories_for_items(["A"], metadata, ["Shoes", "Socks"])


class TestTemporalHoldout:
    def test_latest_interaction_held_out(self, tmp_path):
        records = [
            {"reviewerID": "u", "asin": f"A{i}", "overall": 5.0,
             "unixReviewTime": 1_000_000 + i}
            for i in range(5)
        ]
        path = os.path.join(tmp_path, "r.json")
        write_jsonl(path, records)
        feedback, _, items = build_feedback_from_reviews(
            load_amazon_reviews(path), holdout="latest"
        )
        assert items[feedback.test_items[0]] == "A4"  # the newest review

    def test_duplicate_reviews_use_max_timestamp(self, tmp_path):
        records = [
            {"reviewerID": "u", "asin": "OLDNEW", "overall": 5.0, "unixReviewTime": 10},
        ] + [
            {"reviewerID": "u", "asin": f"A{i}", "overall": 5.0, "unixReviewTime": 100 + i}
            for i in range(4)
        ] + [
            # A second, much later review of the same item.
            {"reviewerID": "u", "asin": "OLDNEW", "overall": 1.0, "unixReviewTime": 999},
        ]
        path = os.path.join(tmp_path, "r.json")
        write_jsonl(path, records)
        feedback, _, items = build_feedback_from_reviews(
            load_amazon_reviews(path), holdout="latest"
        )
        assert items[feedback.test_items[0]] == "OLDNEW"

    def test_invalid_holdout_mode(self, tmp_path):
        path = os.path.join(tmp_path, "r.json")
        write_jsonl(
            path,
            [{"reviewerID": "u", "asin": f"A{i}", "overall": 4.0} for i in range(5)],
        )
        with pytest.raises(ValueError, match="holdout"):
            build_feedback_from_reviews(load_amazon_reviews(path), holdout="newest")

    def test_random_mode_still_deterministic(self, tmp_path):
        path = os.path.join(tmp_path, "r.json")
        write_jsonl(
            path,
            [{"reviewerID": "u", "asin": f"A{i}", "overall": 4.0} for i in range(6)],
        )
        reviews = load_amazon_reviews(path)
        a, _, _ = build_feedback_from_reviews(reviews, seed=3, holdout="random")
        b, _, _ = build_feedback_from_reviews(reviews, seed=3, holdout="random")
        np.testing.assert_array_equal(a.test_items, b.test_items)
