"""Property-based tests for the feedback generator and BPR sampler."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import generate_feedback
from repro.recommenders import BPRTripletSampler


@st.composite
def feedback_case(draw):
    num_categories = draw(st.integers(2, 5))
    items_per_category = draw(st.integers(3, 8))
    item_categories = np.repeat(np.arange(num_categories), items_per_category)
    raw = [draw(st.floats(min_value=0.05, max_value=1.0)) for _ in range(num_categories)]
    total = sum(raw)
    popularity = [value / total for value in raw]
    num_users = draw(st.integers(2, 15))
    seed = draw(st.integers(0, 2 ** 31))
    return item_categories, popularity, num_users, seed


class TestFeedbackProperties:
    @given(feedback_case())
    @settings(max_examples=30, deadline=None)
    def test_minimum_interactions_filter(self, case):
        item_categories, popularity, num_users, seed = case
        fb = generate_feedback(item_categories, popularity, num_users, seed=seed)
        for user in range(num_users):
            total = len(fb.train_items[user]) + (1 if fb.test_items[user] >= 0 else 0)
            assert total >= min(5, fb.num_items)

    @given(feedback_case())
    @settings(max_examples=30, deadline=None)
    def test_leave_one_out_disjointness(self, case):
        item_categories, popularity, num_users, seed = case
        fb = generate_feedback(item_categories, popularity, num_users, seed=seed)
        fb.validate_split()  # raises on leakage

    @given(feedback_case())
    @settings(max_examples=30, deadline=None)
    def test_item_ids_in_range(self, case):
        item_categories, popularity, num_users, seed = case
        fb = generate_feedback(item_categories, popularity, num_users, seed=seed)
        for items in fb.train_items:
            if items.size:
                assert items.min() >= 0
                assert items.max() < fb.num_items

    @given(feedback_case())
    @settings(max_examples=30, deadline=None)
    def test_matrix_consistent_with_counts(self, case):
        item_categories, popularity, num_users, seed = case
        fb = generate_feedback(item_categories, popularity, num_users, seed=seed)
        matrix = fb.to_dense_matrix()
        assert matrix.sum() == fb.num_train_interactions
        np.testing.assert_array_equal(matrix.sum(axis=0), fb.item_interaction_counts())

    @given(feedback_case())
    @settings(max_examples=30, deadline=None)
    def test_determinism(self, case):
        item_categories, popularity, num_users, seed = case
        a = generate_feedback(item_categories, popularity, num_users, seed=seed)
        b = generate_feedback(item_categories, popularity, num_users, seed=seed)
        np.testing.assert_array_equal(a.test_items, b.test_items)


class TestSamplerProperties:
    @given(feedback_case(), st.integers(1, 64))
    @settings(max_examples=30, deadline=None)
    def test_sampled_triplets_valid(self, case, batch_size):
        item_categories, popularity, num_users, seed = case
        fb = generate_feedback(item_categories, popularity, num_users, seed=seed)
        sampler = BPRTripletSampler(fb, seed=seed)
        users, positives, negatives = sampler.sample(batch_size)
        positive_sets = fb.positive_sets()
        for u, i, j in zip(users, positives, negatives):
            assert 0 <= u < fb.num_users
            assert i in positive_sets[u]
            if len(positive_sets[u]) < fb.num_items:
                assert j not in positive_sets[u]
