"""Unit tests for the category registry."""

import numpy as np
import pytest

from repro.data import CategoryRegistry, men_registry, women_registry
from repro.data.categories import Category


class TestCategory:
    def test_frozen(self):
        cat = Category(0, "sock", 0.1, "footwear")
        with pytest.raises(AttributeError):
            cat.name = "other"

    def test_positive_popularity_required(self):
        with pytest.raises(ValueError):
            Category(0, "sock", 0.0, "footwear")


class TestRegistry:
    def test_men_registry_has_paper_scenario_classes(self):
        names = men_registry().names
        for required in ("sock", "running_shoe", "analog_clock", "jersey_tshirt"):
            assert required in names

    def test_women_registry_has_paper_scenario_classes(self):
        names = women_registry().names
        for required in ("maillot", "brassiere", "chain"):
            assert required in names

    def test_ids_are_positional(self):
        registry = men_registry()
        for idx, category in enumerate(registry):
            assert category.category_id == idx
            assert registry[idx] is category

    def test_by_name(self):
        registry = men_registry()
        assert registry.by_name("sock").name == "sock"

    def test_by_name_unknown_raises_with_hint(self):
        with pytest.raises(KeyError, match="unknown category"):
            men_registry().by_name("hat")

    def test_popularity_vector_normalised(self):
        vector = men_registry().popularity_vector()
        assert sum(vector) == pytest.approx(1.0)
        assert all(v > 0 for v in vector)

    def test_source_classes_are_unpopular(self):
        """The paper's attack premise: sources are low-recommended."""
        men = men_registry()
        vec = men.popularity_vector()
        assert vec[men.by_name("sock").category_id] < vec[men.by_name("running_shoe").category_id]
        women = women_registry()
        vec = women.popularity_vector()
        assert (
            vec[women.by_name("maillot").category_id]
            < vec[women.by_name("brassiere").category_id]
        )

    def test_semantic_similarity_matches_paper_scenarios(self):
        men = men_registry()
        assert men.semantically_similar("sock", "running_shoe")  # similar scenario
        assert not men.semantically_similar("sock", "analog_clock")  # dissimilar
        women = women_registry()
        assert women.semantically_similar("maillot", "brassiere")
        assert not women.semantically_similar("maillot", "chain")

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            CategoryRegistry((("a", 1.0, "g"), ("a", 2.0, "g")))

    def test_rejects_single_category(self):
        with pytest.raises(ValueError):
            CategoryRegistry((("a", 1.0, "g"),))

    def test_len(self):
        assert len(men_registry()) == 8
