"""Unit tests for the synthetic implicit-feedback generator."""

import numpy as np
import pytest

from repro.data import InteractionConfig, generate_feedback
from repro.data.interactions import ImplicitFeedback


def small_feedback(seed=0, num_users=30, **config_kwargs):
    item_categories = np.repeat(np.arange(4), 10)  # 40 items, 4 categories
    popularity = [0.05, 0.45, 0.30, 0.20]
    config = InteractionConfig(**config_kwargs) if config_kwargs else None
    return generate_feedback(
        item_categories, popularity, num_users=num_users, config=config, seed=seed
    )


class TestGeneration:
    def test_shapes(self):
        fb = small_feedback()
        assert fb.num_users == 30
        assert fb.num_items == 40
        assert len(fb.train_items) == 30

    def test_min_interactions_respected(self):
        fb = small_feedback()
        for user in range(fb.num_users):
            total = len(fb.train_items[user]) + (1 if fb.test_items[user] >= 0 else 0)
            assert total >= 5

    def test_deterministic(self):
        a, b = small_feedback(seed=3), small_feedback(seed=3)
        assert np.array_equal(a.test_items, b.test_items)
        for ia, ib in zip(a.train_items, b.train_items):
            assert np.array_equal(ia, ib)

    def test_different_seeds_differ(self):
        a, b = small_feedback(seed=1), small_feedback(seed=2)
        assert any(
            not np.array_equal(ia, ib) for ia, ib in zip(a.train_items, b.train_items)
        )

    def test_no_duplicate_interactions_per_user(self):
        fb = small_feedback()
        for items in fb.train_items:
            assert len(items) == len(set(items.tolist()))

    def test_leave_one_out_invariant(self):
        fb = small_feedback()
        fb.validate_split()  # should not raise

    def test_popular_category_gets_more_interactions(self):
        fb = small_feedback(num_users=200)
        counts = fb.item_interaction_counts()
        # category 1 (popularity .45) vs category 0 (popularity .05)
        popular = counts[10:20].sum()
        unpopular = counts[:10].sum()
        assert popular > 2 * unpopular

    def test_zipf_within_category(self):
        fb = small_feedback(num_users=400, zipf_exponent=1.2)
        counts = fb.item_interaction_counts()
        # first item of the popular category should beat its last item
        assert counts[10] > counts[19]

    def test_empty_category_tolerated(self):
        item_categories = np.array([0, 0, 0, 2, 2, 2, 2, 2, 2, 2])  # category 1 empty
        fb = generate_feedback(item_categories, [0.3, 0.4, 0.3], num_users=10, seed=0)
        assert fb.num_interactions >= 50

    def test_all_empty_categories_raise(self):
        with pytest.raises(ValueError):
            generate_feedback(np.array([5]), [0.5, 0.5], num_users=2)

    def test_no_items_raises(self):
        with pytest.raises(ValueError):
            generate_feedback(np.zeros(0, dtype=int), [1.0], num_users=3)

    def test_zero_users_raises(self):
        with pytest.raises(ValueError):
            generate_feedback(np.zeros(5, dtype=int), [1.0], num_users=0)


class TestImplicitFeedbackContainer:
    def test_num_interactions_counts_test_items(self):
        fb = ImplicitFeedback(
            num_users=2,
            num_items=5,
            train_items=[np.array([0, 1]), np.array([2])],
            test_items=np.array([3, -1]),
        )
        assert fb.num_interactions == 4
        assert fb.num_train_interactions == 3

    def test_dense_matrix(self):
        fb = ImplicitFeedback(
            num_users=2,
            num_items=3,
            train_items=[np.array([0]), np.array([1, 2])],
            test_items=np.array([-1, -1]),
        )
        expected = np.array([[1.0, 0, 0], [0, 1, 1]])
        np.testing.assert_array_equal(fb.to_dense_matrix(), expected)

    def test_positive_sets(self):
        fb = small_feedback()
        sets = fb.positive_sets()
        assert len(sets) == fb.num_users
        assert all(isinstance(s, set) for s in sets)

    def test_out_of_range_items_rejected(self):
        with pytest.raises(ValueError):
            ImplicitFeedback(
                num_users=1,
                num_items=3,
                train_items=[np.array([7])],
                test_items=np.array([-1]),
            )

    def test_wrong_user_count_rejected(self):
        with pytest.raises(ValueError):
            ImplicitFeedback(
                num_users=2,
                num_items=3,
                train_items=[np.array([0])],
                test_items=np.array([-1, -1]),
            )

    def test_validate_split_detects_leak(self):
        fb = ImplicitFeedback(
            num_users=1,
            num_items=3,
            train_items=[np.array([0, 1])],
            test_items=np.array([1]),
        )
        with pytest.raises(AssertionError):
            fb.validate_split()


class TestConfigValidation:
    def test_bad_min_interactions(self):
        with pytest.raises(ValueError):
            InteractionConfig(min_interactions=0)

    def test_bad_concentration(self):
        with pytest.raises(ValueError):
            InteractionConfig(affinity_concentration=0)

    def test_bad_exploration(self):
        with pytest.raises(ValueError):
            InteractionConfig(exploration=2.0)

    def test_bad_extra_mean(self):
        with pytest.raises(ValueError):
            InteractionConfig(extra_interactions_mean=-1)
