"""Unit tests for the procedural product-image generator."""

import numpy as np
import pytest

from repro.data import MOTIFS, ProductImageGenerator, men_registry, women_registry


@pytest.fixture(scope="module")
def generator():
    return ProductImageGenerator(men_registry(), image_size=24, seed=1)


class TestRendering:
    def test_output_shape_and_range(self, generator):
        image = generator.render("sock", item_seed=0)
        assert image.shape == (3, 24, 24)
        assert image.min() >= 0.0
        assert image.max() <= 1.0
        assert image.dtype == np.float64

    def test_deterministic_per_seed(self, generator):
        a = generator.render("sock", item_seed=5)
        b = generator.render("sock", item_seed=5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self, generator):
        a = generator.render("sock", item_seed=1)
        b = generator.render("sock", item_seed=2)
        assert not np.allclose(a, b)

    def test_every_registered_category_has_motif(self):
        for registry in (men_registry(), women_registry()):
            for category in registry:
                assert category.name in MOTIFS

    def test_all_motifs_render_nonempty_foreground(self, generator):
        """Every motif must actually draw something distinguishable."""
        for name in men_registry().names:
            image = generator.render(name, item_seed=0)
            # Foreground coverage: enough pixels deviate from the background.
            spread = image.std()
            assert spread > 0.05, f"motif '{name}' renders a near-blank image"

    def test_categories_are_visually_distinct(self, generator):
        """Mean images of different categories should differ markedly."""
        means = {
            name: np.stack(
                [generator.render(name, seed) for seed in range(8)]
            ).mean(axis=0)
            for name in ("sock", "running_shoe", "analog_clock")
        }
        for a in means:
            for b in means:
                if a < b:
                    diff = np.abs(means[a] - means[b]).mean()
                    assert diff > 0.02, f"{a} vs {b} look identical"

    def test_render_category_batch(self, generator):
        batch = generator.render_category_batch("jeans", 5)
        assert batch.shape == (5, 3, 24, 24)

    def test_render_category_batch_empty(self, generator):
        assert generator.render_category_batch("jeans", 0).shape == (0, 3, 24, 24)

    def test_render_category_batch_negative_raises(self, generator):
        with pytest.raises(ValueError):
            generator.render_category_batch("jeans", -1)

    def test_render_items_uses_item_index_as_seed(self, generator):
        categories = np.array([0, 0, 1])
        images = generator.render_items(categories)
        assert images.shape == (3, 3, 24, 24)
        # item 0 and item 1 share a category but differ (different seeds)
        assert not np.allclose(images[0], images[1])


class TestValidation:
    def test_unknown_category_in_registry_raises(self):
        from repro.data.categories import CategoryRegistry

        registry = CategoryRegistry((("mystery", 1.0, "x"), ("sock", 1.0, "y")))
        with pytest.raises(ValueError, match="mystery"):
            ProductImageGenerator(registry)

    def test_too_small_image_raises(self):
        with pytest.raises(ValueError):
            ProductImageGenerator(men_registry(), image_size=4)

    def test_bad_noise_level_raises(self):
        with pytest.raises(ValueError):
            ProductImageGenerator(men_registry(), noise_level=0.9)

    def test_zero_noise_supported(self):
        generator = ProductImageGenerator(men_registry(), image_size=16, noise_level=0.0)
        image = generator.render("sock", 0)
        assert np.isfinite(image).all()
