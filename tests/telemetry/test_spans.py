"""Tests for the tracing core (repro.telemetry.spans).

Covers span nesting (parent ids), exception-safe close with abandoned-
child unwinding, the zero-overhead null span when disabled, and both
exporters — JSON-lines and the Chrome trace-event schema.
"""

import json
import threading

import pytest

from repro.telemetry import (
    TraceRecorder,
    active_recorder,
    install_recorder,
    span,
    tracing,
)
from repro.telemetry.spans import _NULL_SPAN


class TestDisabled:
    def test_span_without_recorder_is_shared_null_singleton(self):
        assert active_recorder() is None
        first = span("anything", key="value")
        second = span("other")
        assert first is second is _NULL_SPAN

    def test_null_span_is_inert(self):
        with span("untraced") as untraced:
            untraced.set_attrs(ignored=1)  # must not raise
        assert active_recorder() is None


class TestNesting:
    def test_parent_ids_reconstruct_the_tree(self):
        with tracing() as recorder:
            with span("outer"):
                with span("inner.a"):
                    pass
                with span("inner.b"):
                    pass
        by_name = {record.name: record for record in recorder.spans}
        outer = by_name["outer"]
        assert outer.parent_id is None
        assert by_name["inner.a"].parent_id == outer.span_id
        assert by_name["inner.b"].parent_id == outer.span_id
        # Completion order: children close before their parent.
        assert [r.name for r in recorder.spans] == ["inner.a", "inner.b", "outer"]

    def test_span_ids_are_unique(self):
        with tracing() as recorder:
            for _ in range(5):
                with span("leaf"):
                    pass
        ids = [record.span_id for record in recorder.spans]
        assert len(set(ids)) == len(ids)

    def test_durations_nest(self):
        with tracing() as recorder:
            with span("outer"):
                with span("inner"):
                    pass
        by_name = {record.name: record for record in recorder.spans}
        inner, outer = by_name["inner"], by_name["outer"]
        assert 0.0 <= inner.duration <= outer.duration
        assert outer.start <= inner.start

    def test_thread_id_recorded(self):
        with tracing() as recorder:
            with span("here"):
                pass
        assert recorder.spans[0].thread_id == threading.get_ident()

    def test_sibling_threads_do_not_share_a_stack(self):
        with tracing() as recorder:
            with span("main.outer"):
                worker_done = threading.Event()

                def worker():
                    with span("worker.span"):
                        pass
                    worker_done.set()

                thread = threading.Thread(target=worker)
                thread.start()
                thread.join()
                assert worker_done.is_set()
        by_name = {record.name: record for record in recorder.spans}
        # The worker's span must not adopt the main thread's open span.
        assert by_name["worker.span"].parent_id is None


class TestExceptionSafety:
    def test_body_exception_records_error_and_propagates(self):
        with tracing() as recorder:
            with pytest.raises(ValueError):
                with span("doomed"):
                    raise ValueError("boom")
        record = recorder.spans[0]
        assert record.name == "doomed"
        assert record.error == "ValueError"
        assert record.duration >= 0.0

    def test_clean_span_has_no_error(self):
        with tracing() as recorder:
            with span("fine"):
                pass
        assert recorder.spans[0].error is None
        assert "error" not in recorder.spans[0].as_dict()

    def test_abandoned_child_is_unwound(self):
        # Enter an inner span whose __exit__ never runs; closing the
        # outer span must pop it so later spans get correct parents.
        with tracing() as recorder:
            with span("outer"):
                leaked = span("leaked")
                leaked.__enter__()
                # no __exit__ — simulate a generator abandoned mid-span
            with span("after"):
                pass
        by_name = {record.name: record for record in recorder.spans}
        assert recorder.current_span_id() is None
        assert by_name["after"].parent_id is None

    def test_set_attrs_inside_body(self):
        with tracing() as recorder:
            with span("stage", fingerprint="abc") as live:
                live.set_attrs(action="built", reason="miss")
        attrs = recorder.spans[0].attrs
        assert attrs == {"fingerprint": "abc", "action": "built", "reason": "miss"}


class TestInstall:
    def test_tracing_restores_previous_recorder(self):
        outer = TraceRecorder()
        previous = install_recorder(outer)
        try:
            with tracing() as inner:
                assert active_recorder() is inner
            assert active_recorder() is outer
        finally:
            install_recorder(previous)

    def test_install_returns_previous(self):
        assert install_recorder(None) is None
        recorder = TraceRecorder()
        assert install_recorder(recorder) is None
        assert install_recorder(None) is recorder


class TestExporters:
    def _populated(self):
        with tracing() as recorder:
            with span("stage.dataset", fingerprint="f0", scale=0.5):
                with span("attack_grid.cell", epsilon_255=8.0):
                    pass
            with pytest.raises(RuntimeError):
                with span("stage.broken", shape=(3, 2)):  # non-primitive attr
                    raise RuntimeError
        return recorder

    def test_jsonl_one_parseable_object_per_span(self):
        recorder = self._populated()
        lines = recorder.as_jsonl().splitlines()
        assert len(lines) == len(recorder.spans) == 3
        payloads = [json.loads(line) for line in lines]
        assert {p["name"] for p in payloads} == {
            "stage.dataset",
            "attack_grid.cell",
            "stage.broken",
        }
        broken = next(p for p in payloads if p["name"] == "stage.broken")
        assert broken["error"] == "RuntimeError"

    def test_chrome_trace_schema(self):
        recorder = self._populated()
        trace = recorder.chrome_trace()
        # Must survive a straight json round-trip (Perfetto loads it).
        trace = json.loads(json.dumps(trace))
        assert trace["displayTimeUnit"] == "ms"
        events = trace["traceEvents"]
        assert len(events) == 3
        for event in events:
            assert {"name", "cat", "ph", "ts", "dur", "pid", "tid", "args"} <= set(event)
            assert event["ph"] == "X"
            assert event["ts"] >= 0.0 and event["dur"] >= 0.0
        # Category is the span-name prefix; events sort by start time.
        cell = next(e for e in events if e["name"] == "attack_grid.cell")
        assert cell["cat"] == "attack_grid"
        assert [e["ts"] for e in events] == sorted(e["ts"] for e in events)

    def test_chrome_args_are_json_safe(self):
        recorder = self._populated()
        broken = next(
            e
            for e in recorder.chrome_trace()["traceEvents"]
            if e["name"] == "stage.broken"
        )
        assert broken["args"]["shape"] == "(3, 2)"  # stringified tuple
        assert broken["args"]["error"] == "RuntimeError"

    def test_microsecond_timestamps_match_records(self):
        recorder = self._populated()
        record = recorder.spans[0]
        event = next(
            e for e in recorder.chrome_trace()["traceEvents"] if e["name"] == record.name
        )
        assert event["ts"] == pytest.approx(record.start * 1e6)
        assert event["dur"] == pytest.approx(record.duration * 1e6)

    def test_write_dispatches_on_extension(self, tmp_path):
        recorder = self._populated()
        jsonl_path = tmp_path / "trace.jsonl"
        chrome_path = tmp_path / "trace.json"
        recorder.write(str(jsonl_path))
        recorder.write(str(chrome_path))
        lines = jsonl_path.read_text().strip().splitlines()
        assert len(lines) == 3 and all(json.loads(line) for line in lines)
        chrome = json.loads(chrome_path.read_text())
        assert len(chrome["traceEvents"]) == 3

    def test_empty_recorder_exports_cleanly(self, tmp_path):
        recorder = TraceRecorder()
        assert recorder.as_jsonl() == ""
        assert recorder.chrome_trace() == {"traceEvents": [], "displayTimeUnit": "ms"}
        path = tmp_path / "empty.jsonl"
        recorder.write(str(path))
        assert path.read_text() == ""
