"""Tests for the autograd op profiler (repro.telemetry.profiler).

Op-count accuracy on a known graph, no_grad visibility, byte
accounting, hot-op ordering — and the meta-property inherited from the
sanitizer: profiled FGSM/PGD attacks are bitwise identical to
unprofiled ones.
"""

import numpy as np
import pytest

from repro.attacks import FGSM, PGD
from repro.nn import Tensor, TinyResNet
from repro.nn.tensor import no_grad
from repro.rng import rng_from_seed
from repro.telemetry import (
    OpProfiler,
    active_profiler,
    format_hot_ops,
    install_profiler,
    profile,
    telemetry_session,
)
from repro.telemetry.profiler import _op_name_from_qualname


def _f32(shape, seed=0):
    return rng_from_seed(seed).random(shape).astype(np.float32)


@pytest.fixture(scope="module")
def model():
    net = TinyResNet(num_classes=4, widths=(4, 8), blocks_per_stage=(1, 1), seed=3)
    net.eval()
    return net


def _stats_by_op(profiler):
    return {stat.op: stat for stat in profiler.table()}


class TestOpCounts:
    def test_known_graph_counts_exactly(self):
        with profile() as profiler:
            x = Tensor(_f32((4,)), requires_grad=True)
            y = x * x
            z = y + y
            loss = z.sum()
            loss.backward()
        stats = _stats_by_op(profiler)
        assert stats["__mul__"].calls == 1
        assert stats["__add__"].calls == 1
        assert stats["sum"].calls == 1
        assert stats["__mul__"].backward_calls == 1
        assert stats["__add__"].backward_calls == 1
        assert stats["sum"].backward_calls == 1
        assert profiler.total_ops == 3

    def test_no_grad_forward_ops_are_counted(self):
        with profile() as profiler:
            x = Tensor(_f32((4,)))
            with no_grad():
                (x * x).sum()
        stats = _stats_by_op(profiler)
        assert stats["__mul__"].calls == 1
        assert stats["sum"].calls == 1
        assert stats["sum"].backward_calls == 0

    def test_output_bytes_exact(self):
        with profile() as profiler:
            x = Tensor(_f32((8,)), requires_grad=True)
            y = x * x  # float32 (8,) -> 32 bytes
            y.sum()  # float32 scalar -> 4 bytes
        stats = _stats_by_op(profiler)
        assert stats["__mul__"].output_bytes == 32
        assert stats["sum"].output_bytes == 4

    def test_backward_seconds_accumulate_exactly(self):
        profiler = OpProfiler()

        def backward(grad):  # stands in for an engine closure
            pass

        profiler.record_backward(backward, 0.25)
        profiler.record_backward(backward, 0.50)
        stats = _stats_by_op(profiler)
        # Closures are attributed to their enclosing function — here the
        # test itself plays the role of the op that built the closure.
        op = "test_backward_seconds_accumulate_exactly"
        assert stats[op].backward_calls == 2
        assert stats[op].backward_s == pytest.approx(0.75)

    def test_leaf_label_for_none(self):
        assert _op_name_from_qualname(None) == "<leaf>"


class TestReporting:
    def test_table_sorted_hottest_first(self):
        profiler = OpProfiler()
        for op, seconds in (("cool", 0.1), ("hot", 3.0), ("warm", 1.0)):
            stat = profiler._stat(op)
            stat.calls = 1
            stat.forward_s = seconds
        assert [stat.op for stat in profiler.table()] == ["hot", "warm", "cool"]

    def test_snapshot_round_trips_to_json(self):
        import json

        with profile() as profiler:
            x = Tensor(_f32((4,)), requires_grad=True)
            (x * x).sum().backward()
        snapshot = json.loads(json.dumps(profiler.snapshot()))
        assert {row["op"] for row in snapshot} == {"__mul__", "sum"}
        for row in snapshot:
            assert row["total_s"] == pytest.approx(
                row["forward_s"] + row["backward_s"]
            )

    def test_format_hot_ops(self):
        with profile() as profiler:
            x = Tensor(_f32((4,)), requires_grad=True)
            (x * x).sum().backward()
        rendered = format_hot_ops(profiler)
        assert "op" in rendered and "bwd calls" in rendered
        assert "__mul__" in rendered and "sum" in rendered
        assert "2 op(s) across 2 type(s)" in rendered

    def test_format_hot_ops_empty(self):
        assert format_hot_ops(OpProfiler()) == "no autograd ops recorded"


class TestInstallation:
    def test_profile_nests_and_restores(self):
        assert active_profiler() is None
        with profile() as outer:
            assert active_profiler() is outer
            with profile() as inner:
                assert active_profiler() is inner
            assert active_profiler() is outer
        assert active_profiler() is None

    def test_install_returns_previous(self):
        profiler = OpProfiler()
        assert install_profiler(profiler) is None
        assert install_profiler(None) is profiler

    def test_session_profile_flag_engages_profiler(self):
        with telemetry_session(profile=True) as session:
            x = Tensor(_f32((4,)), requires_grad=True)
            (x * x).sum().backward()
        hot_ops = session.report()["hot_ops"]
        assert {row["op"] for row in hot_ops} == {"__mul__", "sum"}


class TestAttacksUnderProfiler:
    """Profiled FGSM/PGD must be bitwise identical to unprofiled runs."""

    def test_fgsm_bitwise_identical(self, model):
        images = _f32((5, 3, 16, 16), seed=1)
        plain = FGSM(model, epsilon=0.03).attack(images, target_class=1)
        with profile() as profiler:
            profiled = FGSM(model, epsilon=0.03).attack(images, target_class=1)
        assert plain.adversarial_images.tobytes() == profiled.adversarial_images.tobytes()
        assert profiler.total_ops > 0
        stats = _stats_by_op(profiler)
        assert stats["conv2d"].backward_calls > 0

    def test_pgd_bitwise_identical(self, model):
        images = _f32((4, 3, 16, 16), seed=2)
        plain = PGD(model, 0.03, num_steps=3, seed=0).attack(images, target_class=2)
        with profile():
            profiled = PGD(model, 0.03, num_steps=3, seed=0).attack(
                images, target_class=2
            )
        assert plain.adversarial_images.tobytes() == profiled.adversarial_images.tobytes()
