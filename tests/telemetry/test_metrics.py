"""Tests for the metrics registry (repro.telemetry.metrics) and the
telemetry session switch.

The load-bearing check: fixed-bucket histogram percentiles must agree
with ``np.percentile`` to within one bucket width.
"""

import json

import numpy as np
import pytest

from repro.rng import rng_from_seed
from repro.telemetry import (
    DEFAULT_LATENCY_EDGES_MS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    active_metrics,
    format_metrics,
    install_metrics,
    telemetry_session,
)
from repro.telemetry.session import current_report


class TestCounterGauge:
    def test_counter_accumulates(self):
        counter = Counter("requests")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        assert counter.as_dict() == {"type": "counter", "value": 5}

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError, match="Gauge"):
            Counter("requests").inc(-1)

    def test_gauge_last_write_wins(self):
        gauge = Gauge("hit_rate")
        gauge.set(0.25)
        gauge.set(0.75)
        assert gauge.as_dict() == {"type": "gauge", "value": 0.75}


class TestHistogram:
    def test_percentiles_match_numpy_within_bucket_width(self):
        # Fine uniform edges: interpolation error is bounded by one
        # bucket width (0.05 ms here), so the comparison is tight.
        edges = np.linspace(0.0, 100.0, 2001)
        histogram = Histogram("latency", edges=edges)
        samples = rng_from_seed(7).uniform(0.0, 100.0, size=5000)
        for sample in samples:
            histogram.record(float(sample))
        bucket_width = float(edges[1] - edges[0])
        for q in (50.0, 95.0, 99.0):
            exact = float(np.percentile(samples, q))
            assert histogram.percentile(q) == pytest.approx(exact, abs=2 * bucket_width)

    def test_percentiles_on_lognormal_default_edges(self):
        # The shipped geometric edges keep relative error under ~20%
        # across the skewed latency-like distribution they exist for.
        histogram = Histogram("latency")
        samples = np.exp(rng_from_seed(3).normal(0.0, 1.0, size=4000))  # ~[0.03, 30] ms
        for sample in samples:
            histogram.record(float(sample))
        for q in (50.0, 95.0, 99.0):
            exact = float(np.percentile(samples, q))
            assert histogram.percentile(q) == pytest.approx(exact, rel=0.20)

    def test_count_sum_min_max_mean_are_exact(self):
        histogram = Histogram("h", edges=[1.0, 2.0, 4.0])
        for value in (0.5, 1.5, 3.0, 9.0):
            histogram.record(value)
        payload = histogram.as_dict()
        assert payload["count"] == 4
        assert payload["sum"] == pytest.approx(14.0)
        assert payload["mean"] == pytest.approx(3.5)
        assert payload["min"] == 0.5 and payload["max"] == 9.0

    def test_under_and_overflow_bounded_by_observed_extremes(self):
        histogram = Histogram("h", edges=[10.0, 20.0])
        histogram.record(2.0)  # underflow bucket
        histogram.record(100.0)  # overflow bucket
        assert histogram.percentile(0.0) >= 2.0
        assert histogram.percentile(100.0) == 100.0

    def test_single_sample(self):
        histogram = Histogram("h", edges=[1.0, 2.0])
        histogram.record(1.5)
        for q in (0.0, 50.0, 100.0):
            assert 1.5 == pytest.approx(histogram.percentile(q), abs=0.5)

    def test_empty_histogram(self):
        histogram = Histogram("h", edges=[1.0, 2.0])
        assert histogram.percentile(50.0) == 0.0
        payload = histogram.as_dict()
        assert payload["count"] == 0
        assert payload["min"] is None and payload["max"] is None

    def test_invalid_edges_and_quantiles_raise(self):
        with pytest.raises(ValueError, match="two bucket edges"):
            Histogram("h", edges=[1.0])
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("h", edges=[1.0, 1.0, 2.0])
        histogram = Histogram("h", edges=[1.0, 2.0])
        with pytest.raises(ValueError, match="0, 100"):
            histogram.percentile(101.0)

    def test_default_edges_span_microseconds_to_seconds(self):
        edges = DEFAULT_LATENCY_EDGES_MS
        assert all(b > a for a, b in zip(edges, edges[1:]))
        assert edges[0] == pytest.approx(1e-3)  # 1 µs in ms
        assert edges[-1] == pytest.approx(1e5)  # 100 s in ms


class TestRegistry:
    def test_get_or_create_returns_same_instance(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("lat") is registry.histogram("lat")
        assert len(registry) == 2 and "a" in registry and "b" not in registry

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError, match="already registered as Counter"):
            registry.gauge("x")

    def test_snapshot_is_sorted_and_json_serializable(self):
        registry = MetricsRegistry()
        registry.counter("b.count").inc(2)
        registry.gauge("a.level").set(1.5)
        registry.histogram("c.latency_ms").record(3.0)
        snapshot = json.loads(json.dumps(registry.snapshot()))
        assert list(snapshot) == ["a.level", "b.count", "c.latency_ms"]
        assert snapshot["b.count"]["value"] == 2
        assert snapshot["c.latency_ms"]["p50"] == pytest.approx(3.0, rel=0.25)

    def test_format_metrics(self):
        registry = MetricsRegistry()
        assert format_metrics(registry) == "no metrics recorded"
        registry.counter("serving.cache.hits").inc(3)
        registry.histogram("serving.recommend.latency_ms").record(1.0)
        rendered = format_metrics(registry)
        assert "serving.cache.hits" in rendered
        assert "p95" in rendered


class TestSession:
    def test_disabled_session_installs_nothing(self):
        with telemetry_session() as session:
            assert not session.enabled
            assert active_metrics() is None
            assert current_report() is None
        assert session.report() == {}

    def test_session_installs_and_restores(self):
        assert active_metrics() is None
        with telemetry_session(metrics=True, trace=True, profile=True) as session:
            assert active_metrics() is session.metrics
            session.metrics.counter("seen").inc()
        assert active_metrics() is None
        assert session.report()["metrics"]["seen"]["value"] == 1
        assert session.report()["span_count"] == 0
        assert session.report()["hot_ops"] == []

    def test_sessions_nest_innermost_winning(self):
        with telemetry_session(metrics=True) as outer:
            with telemetry_session(metrics=True) as inner:
                assert active_metrics() is inner.metrics
            assert active_metrics() is outer.metrics

    def test_current_report_reads_installed_collectors(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(7)
        previous = install_metrics(registry)
        try:
            report = current_report()
        finally:
            install_metrics(previous)
        assert report == {"metrics": {"c": {"type": "counter", "value": 7}}}
