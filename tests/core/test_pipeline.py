"""Unit tests for the TAaMR pipeline."""

import numpy as np
import pytest

from repro.attacks import FGSM, PGD
from repro.core import TAaMRPipeline, make_scenario
from repro.data import amazon_men_like
from repro.features import ClassifierConfig, FeatureExtractor, train_catalog_classifier
from repro.recommenders import BPRMF, BPRMFConfig, VBPR, VBPRConfig


@pytest.fixture(scope="module")
def pipeline():
    ds = amazon_men_like(scale=0.003, image_size=24, seed=3)
    model, report = train_catalog_classifier(
        ds.images,
        ds.item_categories,
        ds.num_categories,
        widths=(8, 16),
        blocks_per_stage=(1, 1),
        config=ClassifierConfig(epochs=20, batch_size=32, learning_rate=0.08, seed=0),
    )
    assert report.final_train_accuracy > 0.9
    extractor = FeatureExtractor(model).fit(ds.images)
    features = extractor.transform(ds.images)
    vbpr = VBPR(ds.num_users, ds.num_items, features, VBPRConfig(epochs=30, seed=0)).fit(
        ds.feedback
    )
    return TAaMRPipeline(ds, extractor, vbpr, cutoff=50)


class TestPipelineConstruction:
    def test_requires_visual_recommender(self, pipeline):
        ds = pipeline.dataset
        bpr = BPRMF(ds.num_users, ds.num_items, BPRMFConfig(epochs=1)).fit(ds.feedback)
        with pytest.raises(TypeError):
            TAaMRPipeline(ds, pipeline.extractor, bpr)

    def test_requires_fitted_recommender(self, pipeline):
        ds = pipeline.dataset
        unfitted = VBPR(ds.num_users, ds.num_items, pipeline.clean_features)
        with pytest.raises(RuntimeError):
            TAaMRPipeline(ds, pipeline.extractor, unfitted)

    def test_requires_fitted_extractor(self, pipeline):
        ds = pipeline.dataset
        with pytest.raises(RuntimeError):
            TAaMRPipeline(
                ds, FeatureExtractor(pipeline.extractor.model), pipeline.recommender
            )

    def test_cutoff_capped_at_item_count(self, pipeline):
        ds = pipeline.dataset
        capped = TAaMRPipeline(ds, pipeline.extractor, pipeline.recommender, cutoff=10_000)
        assert capped.cutoff == ds.num_items

    def test_invalid_cutoff(self, pipeline):
        with pytest.raises(ValueError):
            TAaMRPipeline(
                pipeline.dataset, pipeline.extractor, pipeline.recommender, cutoff=0
            )


class TestCleanViews:
    def test_chr_report_sums_to_100(self, pipeline):
        report = pipeline.clean_chr_report()
        assert sum(report.values()) == pytest.approx(100.0, abs=1e-6)

    def test_source_category_is_low_recommended(self, pipeline):
        """The premise of the paper's scenarios holds on our substrate."""
        report = pipeline.clean_chr_report()
        assert report["sock"] < report["running_shoe"]

    def test_category_items_uses_classifier(self, pipeline):
        socks = pipeline.category_items("sock")
        sock_id = pipeline.dataset.registry.by_name("sock").category_id
        assert np.all(pipeline.item_classes[socks] == sock_id)

    def test_top_lists_exclude_train_items(self, pipeline):
        feedback = pipeline.dataset.feedback
        for user in range(feedback.num_users):
            overlap = set(pipeline.clean_top_n[user].tolist()) & set(
                feedback.train_items[user].tolist()
            )
            assert not overlap


class TestAttackOutcome:
    @pytest.fixture(scope="class")
    def outcome(self, pipeline):
        scenario = make_scenario(pipeline.dataset.registry, "sock", "running_shoe")
        attack = PGD(pipeline.extractor.model, 24 / 255, num_steps=10, seed=0)
        return pipeline.attack_category(scenario, attack)

    def test_chr_increases_under_strong_attack(self, pipeline, outcome):
        assert outcome.chr_source_after > outcome.chr_source_before

    def test_attack_succeeds_on_most_items(self, outcome):
        assert outcome.success_rate > 0.5

    def test_target_was_more_popular(self, outcome):
        assert outcome.chr_target_before > outcome.chr_source_before

    def test_visual_metrics_in_expected_ranges(self, outcome):
        assert 20 < outcome.visual.psnr < 50  # paper's PSNR band
        assert 0.5 < outcome.visual.ssim <= 1.0
        assert outcome.visual.psm > 0

    def test_adversarial_images_valid(self, pipeline, outcome):
        images = outcome.adversarial_images
        assert images.min() >= 0.0
        assert images.max() <= 1.0
        clean = pipeline.dataset.images[outcome.attacked_item_ids]
        # 1e-6 slack: float32 compute rounds the clean image by up to ~6e-8/pixel.
        assert np.abs(images - clean).max() <= 24 / 255 + 1e-6

    def test_epsilon_recorded_in_255_units(self, outcome):
        assert outcome.epsilon_255 == pytest.approx(24.0)

    def test_uplift_property(self, outcome):
        assert outcome.chr_uplift == pytest.approx(
            outcome.chr_source_after / outcome.chr_source_before
        )

    def test_unattacked_categories_lists_still_valid(self, pipeline, outcome):
        """Post-attack scores produce well-formed lists."""
        assert outcome.scores_after.shape == pipeline.clean_scores.shape
        assert np.isfinite(outcome.scores_after).all()

    def test_weak_attack_moves_less_than_strong(self, pipeline, outcome):
        scenario = make_scenario(pipeline.dataset.registry, "sock", "running_shoe")
        weak = pipeline.attack_category(
            scenario, FGSM(pipeline.extractor.model, 1 / 255)
        )
        assert weak.chr_source_after <= outcome.chr_source_after + 1e-9

    def test_item_report_fields(self, pipeline, outcome):
        item_id = int(outcome.attacked_item_ids[0])
        report = pipeline.item_report(outcome, item_id)
        assert report.item_id == item_id
        for prob in (
            report.source_probability_before,
            report.target_probability_before,
            report.source_probability_after,
            report.target_probability_after,
        ):
            assert 0.0 <= prob <= 1.0
        assert report.mean_rank_before >= 1.0
        assert report.mean_rank_after >= 1.0

    def test_item_report_target_probability_rises(self, pipeline, outcome):
        """Fig. 2: successful attack drives target probability up."""
        successes = outcome.attacked_item_ids[
            pipeline.extractor.model.predict(outcome.adversarial_images)
            == pipeline.dataset.registry.by_name("running_shoe").category_id
        ]
        if successes.size == 0:
            pytest.skip("no successful item in this run")
        report = pipeline.item_report(outcome, int(successes[0]))
        assert report.target_probability_after > report.target_probability_before

    def test_item_report_unattacked_item_rejected(self, pipeline, outcome):
        shoes = pipeline.category_items("running_shoe")
        with pytest.raises(ValueError):
            pipeline.item_report(outcome, int(shoes[0]))

    def test_unknown_source_category_items(self, pipeline):
        scenario = make_scenario(pipeline.dataset.registry, "sock", "running_shoe")
        # Forge a pipeline whose classifier never predicts 'sock'.
        forged_classes = pipeline.item_classes.copy()
        original = pipeline.item_classes
        pipeline.item_classes = np.where(
            forged_classes == pipeline.dataset.registry.by_name("sock").category_id,
            pipeline.dataset.registry.by_name("jeans").category_id,
            forged_classes,
        )
        try:
            with pytest.raises(ValueError, match="no items"):
                pipeline.attack_category(
                    scenario, FGSM(pipeline.extractor.model, 2 / 255)
                )
        finally:
            pipeline.item_classes = original
