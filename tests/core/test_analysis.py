"""Unit tests for weighted CHR and the analysis helpers."""

import numpy as np
import pytest

from repro.core import (
    ascii_curve,
    category_hit_ratio,
    chr_curve,
    success_curve,
    weighted_category_hit_ratio,
)
from repro.core.pipeline import AttackOutcome, VisualQuality
from repro.core.scenarios import AttackScenario


def outcome(attack, eps, chr_after=5.0, success=0.5):
    return AttackOutcome(
        scenario=AttackScenario("sock", "running_shoe", True),
        attack_name=attack,
        epsilon_255=eps,
        chr_source_before=2.0,
        chr_target_before=10.0,
        chr_source_after=chr_after,
        success_rate=success,
        visual=VisualQuality(30.0, 0.95, 0.5),
        attacked_item_ids=np.array([1, 2]),
        adversarial_images=np.zeros((2, 3, 4, 4)),
        scores_after=np.zeros((2, 5)),
    )


class TestWeightedCHR:
    def test_bounded(self):
        lists = np.array([[0, 1, 2, 3]])
        value = weighted_category_hit_ratio(lists, np.array([0, 2]))
        assert 0.0 <= value <= 1.0

    def test_full_category_equals_one(self):
        lists = np.array([[0, 1], [1, 0]])
        assert weighted_category_hit_ratio(lists, np.array([0, 1])) == pytest.approx(1.0)

    def test_top_position_weighs_more(self):
        lists = np.array([[0, 1, 2, 3]])
        top_hit = weighted_category_hit_ratio(lists, np.array([0]))
        bottom_hit = weighted_category_hit_ratio(lists, np.array([3]))
        assert top_hit > bottom_hit

    def test_unweighted_chr_is_position_blind(self):
        lists = np.array([[0, 1, 2, 3]])
        assert category_hit_ratio(lists, np.array([0])) == category_hit_ratio(
            lists, np.array([3])
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            weighted_category_hit_ratio(np.array([0, 1]), np.array([0]))
        with pytest.raises(ValueError):
            weighted_category_hit_ratio(np.zeros((1, 0), dtype=int), np.array([0]))


class TestCurves:
    def test_chr_curve_sorted_by_epsilon(self):
        outcomes = [outcome("PGD", 8, 6.0), outcome("PGD", 2, 3.0), outcome("FGSM", 4)]
        xs, ys = chr_curve(outcomes, "PGD")
        np.testing.assert_array_equal(xs, [2, 8])
        np.testing.assert_array_equal(ys, [3.0, 6.0])

    def test_success_curve(self):
        outcomes = [outcome("FGSM", 2, success=0.1), outcome("FGSM", 8, success=0.9)]
        xs, ys = success_curve(outcomes, "FGSM")
        np.testing.assert_array_equal(ys, [0.1, 0.9])

    def test_unknown_attack_raises(self):
        with pytest.raises(ValueError):
            chr_curve([outcome("PGD", 2)], "DeepFool")


class TestAsciiCurve:
    def test_renders_all_points(self):
        text = ascii_curve([1, 2, 3, 4], [1.0, 2.0, 3.0, 2.5], width=20, height=5)
        assert text.count("o") >= 3  # points may share a cell

    def test_label_included(self):
        text = ascii_curve([0, 1], [0, 1], label="CHR vs eps")
        assert text.startswith("CHR vs eps")

    def test_constant_series_supported(self):
        text = ascii_curve([0, 1, 2], [5.0, 5.0, 5.0])
        assert "o" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_curve([], [])
        with pytest.raises(ValueError):
            ascii_curve([1, 2], [1])
        with pytest.raises(ValueError):
            ascii_curve([1, 2], [1, 2], width=4)


class TestCategoryShift:
    @pytest.fixture(scope="class")
    def shift_setup(self):
        from repro.attacks import PGD
        from repro.core import TAaMRPipeline, make_scenario
        from repro.data import tiny_dataset
        from repro.features import (
            ClassifierConfig,
            FeatureExtractor,
            train_catalog_classifier,
        )
        from repro.recommenders import VBPR, VBPRConfig

        ds = tiny_dataset(seed=0, image_size=16)
        model, _ = train_catalog_classifier(
            ds.images,
            ds.item_categories,
            ds.num_categories,
            widths=(8, 16),
            blocks_per_stage=(1, 1),
            config=ClassifierConfig(epochs=10, batch_size=16, seed=0),
        )
        extractor = FeatureExtractor(model).fit(ds.images)
        vbpr = VBPR(
            ds.num_users,
            ds.num_items,
            extractor.transform(ds.images),
            VBPRConfig(epochs=8),
        ).fit(ds.feedback)
        pipeline = TAaMRPipeline(ds, extractor, vbpr, cutoff=20)
        scenario = make_scenario(ds.registry, "sock", "running_shoe")
        outcome = pipeline.attack_category(
            scenario, PGD(model, 24 / 255, num_steps=5, seed=0)
        )
        return pipeline, outcome

    def test_shift_covers_every_category(self, shift_setup):
        from repro.core import category_shift

        pipeline, outcome = shift_setup
        shift = category_shift(pipeline, outcome)
        assert set(shift) == set(pipeline.dataset.registry.names)

    def test_shift_is_zero_sum(self, shift_setup):
        """CHR redistribution: gains and losses across categories cancel."""
        from repro.core import category_shift

        pipeline, outcome = shift_setup
        shift = category_shift(pipeline, outcome)
        assert sum(shift.values()) == pytest.approx(0.0, abs=1e-6)
