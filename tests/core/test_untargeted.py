"""Unit tests for the untargeted-attack experiment (the [20] setting)."""

import numpy as np
import pytest

from repro.attacks import PGD
from repro.core import TAaMRPipeline, run_untargeted_attack
from repro.data import amazon_men_like
from repro.features import ClassifierConfig, FeatureExtractor, train_catalog_classifier
from repro.recommenders import VBPR, VBPRConfig


@pytest.fixture(scope="module")
def pipeline():
    ds = amazon_men_like(scale=0.003, image_size=24, seed=5)
    model, report = train_catalog_classifier(
        ds.images,
        ds.item_categories,
        ds.num_categories,
        widths=(8, 16),
        blocks_per_stage=(1, 1),
        config=ClassifierConfig(epochs=20, batch_size=32, learning_rate=0.08, seed=0),
    )
    assert report.final_train_accuracy > 0.9
    extractor = FeatureExtractor(model).fit(ds.images)
    vbpr = VBPR(
        ds.num_users, ds.num_items, extractor.transform(ds.images), VBPRConfig(epochs=30)
    ).fit(ds.feedback)
    return TAaMRPipeline(ds, extractor, vbpr, cutoff=50)


@pytest.fixture(scope="module")
def outcome(pipeline):
    attack = PGD(pipeline.extractor.model, 24 / 255, num_steps=10, seed=0)
    return run_untargeted_attack(pipeline, "running_shoe", attack)


class TestUntargetedOutcome:
    def test_misclassification_achieved(self, outcome):
        """Untargeted PGD at a generous budget flips most images."""
        assert outcome.misclassification_rate > 0.5

    def test_rankings_evaluated_on_both_sides(self, outcome):
        assert outcome.ranking_before.num_evaluated_users > 0
        assert (
            outcome.ranking_after.num_evaluated_users
            == outcome.ranking_before.num_evaluated_users
        )

    def test_chr_recorded(self, outcome):
        assert outcome.chr_before >= 0.0
        assert outcome.chr_after >= 0.0

    def test_attacking_popular_category_reduces_its_chr(self, outcome):
        """Scattering a popular category's items away from their class
        should not *increase* its CHR (contrast with targeted TAaMR)."""
        assert outcome.chr_after <= outcome.chr_before + 1.0

    def test_as_dict_keys(self, outcome):
        d = outcome.as_dict()
        for key in ("misclassification_rate", "hr_before", "hr_after", "chr_before"):
            assert key in d

    def test_hit_ratio_drop_property(self, outcome):
        assert outcome.hit_ratio_drop == pytest.approx(
            outcome.ranking_before.hit_ratio - outcome.ranking_after.hit_ratio
        )

    def test_epsilon_recorded(self, outcome):
        assert outcome.epsilon_255 == pytest.approx(24.0)

    def test_unknown_category_rejected(self, pipeline):
        attack = PGD(pipeline.extractor.model, 8 / 255, num_steps=2, seed=0)
        with pytest.raises(KeyError):
            run_untargeted_attack(pipeline, "spaceship", attack)
