"""Property-based tests for the Category Hit Ratio metric."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import category_hit_ratio, chr_by_category


@st.composite
def topn_lists(draw):
    num_items = draw(st.integers(4, 40))
    num_users = draw(st.integers(1, 10))
    cutoff = draw(st.integers(1, min(num_items, 12)))
    rng = np.random.default_rng(draw(st.integers(0, 2 ** 31)))
    lists = np.stack(
        [rng.choice(num_items, size=cutoff, replace=False) for _ in range(num_users)]
    )
    item_classes = rng.integers(0, draw(st.integers(1, 5)), size=num_items)
    return lists, item_classes, num_items


class TestCHRProperties:
    @given(topn_lists())
    @settings(max_examples=60, deadline=None)
    def test_bounded_zero_one(self, case):
        lists, item_classes, num_items = case
        for cls in np.unique(item_classes):
            value = category_hit_ratio(lists, np.flatnonzero(item_classes == cls))
            assert 0.0 <= value <= 1.0

    @given(topn_lists())
    @settings(max_examples=60, deadline=None)
    def test_partition_additivity(self, case):
        """CHR over disjoint categories sums to CHR of their union."""
        lists, item_classes, num_items = case
        classes = np.unique(item_classes)
        total = sum(
            category_hit_ratio(lists, np.flatnonzero(item_classes == cls))
            for cls in classes
        )
        everything = category_hit_ratio(lists, np.arange(num_items))
        assert abs(total - everything) < 1e-9

    @given(topn_lists())
    @settings(max_examples=60, deadline=None)
    def test_full_universe_is_one(self, case):
        lists, _, num_items = case
        assert category_hit_ratio(lists, np.arange(num_items)) == 1.0

    @given(topn_lists())
    @settings(max_examples=60, deadline=None)
    def test_monotone_in_item_set(self, case):
        """Adding items to the category can only raise CHR."""
        lists, item_classes, num_items = case
        small = np.flatnonzero(item_classes == item_classes[0])
        large = np.union1d(small, np.arange(num_items // 2))
        assert category_hit_ratio(lists, large) >= category_hit_ratio(lists, small)

    @given(topn_lists())
    @settings(max_examples=60, deadline=None)
    def test_invariant_to_within_list_order(self, case):
        """CHR counts membership, not position, so shuffling lists is a no-op."""
        lists, item_classes, _ = case
        rng = np.random.default_rng(0)
        shuffled = lists.copy()
        for row in shuffled:
            rng.shuffle(row)
        items = np.flatnonzero(item_classes == item_classes[0])
        assert category_hit_ratio(lists, items) == category_hit_ratio(shuffled, items)

    @given(topn_lists())
    @settings(max_examples=60, deadline=None)
    def test_chr_by_category_consistency(self, case):
        lists, item_classes, _ = case
        num_classes = int(item_classes.max()) + 1
        vector = chr_by_category(lists, item_classes, num_classes)
        for cls in range(num_classes):
            single = category_hit_ratio(lists, np.flatnonzero(item_classes == cls))
            assert abs(vector[cls] - single) < 1e-12
