"""Unit tests for attack scenario selection."""

import pytest

from repro.core import AttackScenario, make_scenario, paper_scenarios, select_scenarios
from repro.data import men_registry, women_registry


class TestMakeScenario:
    def test_similarity_flag_from_registry(self):
        registry = men_registry()
        similar = make_scenario(registry, "sock", "running_shoe")
        assert similar.semantically_similar
        dissimilar = make_scenario(registry, "sock", "analog_clock")
        assert not dissimilar.semantically_similar

    def test_label(self):
        scenario = AttackScenario("sock", "running_shoe", True)
        assert "sock→running_shoe" in scenario.label()
        assert "similar" in scenario.label()

    def test_source_equals_target_rejected(self):
        with pytest.raises(ValueError):
            make_scenario(men_registry(), "sock", "sock")

    def test_unknown_category_rejected(self):
        with pytest.raises(KeyError):
            make_scenario(men_registry(), "sock", "flying_carpet")


class TestSelectScenarios:
    def chr_values(self):
        registry = men_registry()
        values = {name: 10.0 for name in registry.names}
        values["sock"] = 2.0
        values["running_shoe"] = 25.0
        values["analog_clock"] = 15.0
        return registry, values

    def test_auto_source_is_lowest_chr(self):
        registry, values = self.chr_values()
        scenarios = select_scenarios(registry, values)
        assert all(s.source == "sock" for s in scenarios)

    def test_returns_similar_and_dissimilar(self):
        registry, values = self.chr_values()
        scenarios = select_scenarios(registry, values)
        kinds = {s.semantically_similar for s in scenarios}
        assert kinds == {True, False}

    def test_targets_maximise_chr_within_kind(self):
        registry, values = self.chr_values()
        scenarios = select_scenarios(registry, values)
        by_kind = {s.semantically_similar: s for s in scenarios}
        assert by_kind[True].target == "running_shoe"
        # highest-CHR non-footwear category
        assert by_kind[False].target == "analog_clock"

    def test_explicit_source(self):
        registry, values = self.chr_values()
        scenarios = select_scenarios(registry, values, source="sandal")
        assert all(s.source == "sandal" for s in scenarios)

    def test_min_ratio_filters_weak_targets(self):
        registry = men_registry()
        values = {name: 2.0 for name in registry.names}
        values["sock"] = 1.9  # nothing is 1.5x higher
        with pytest.raises(ValueError, match="popularity imbalance"):
            select_scenarios(registry, values)

    def test_missing_categories_rejected(self):
        registry = men_registry()
        with pytest.raises(ValueError, match="missing"):
            select_scenarios(registry, {"sock": 1.0})


class TestPaperScenarios:
    def test_men(self):
        scenarios = paper_scenarios("amazon_men_like", men_registry())
        pairs = {(s.source, s.target) for s in scenarios}
        assert pairs == {("sock", "running_shoe"), ("sock", "analog_clock")}
        by_target = {s.target: s for s in scenarios}
        assert by_target["running_shoe"].semantically_similar
        assert not by_target["analog_clock"].semantically_similar

    def test_women(self):
        scenarios = paper_scenarios("amazon_women_like", women_registry())
        pairs = {(s.source, s.target) for s in scenarios}
        assert pairs == {("maillot", "brassiere"), ("maillot", "chain")}

    def test_unknown_dataset(self):
        with pytest.raises(ValueError):
            paper_scenarios("movielens", men_registry())
