"""Unit tests for the Category Hit Ratio metric (Definition 5)."""

import numpy as np
import pytest

from repro.core import category_hit_ratio, chr_by_category, chr_percent, chr_report


class TestCategoryHitRatio:
    def test_all_slots_from_category(self):
        lists = np.array([[0, 1], [1, 0]])
        assert category_hit_ratio(lists, np.array([0, 1])) == 1.0

    def test_no_slots_from_category(self):
        lists = np.array([[0, 1], [1, 0]])
        assert category_hit_ratio(lists, np.array([5, 6])) == 0.0

    def test_fraction(self):
        lists = np.array([[0, 1, 2, 3]])  # N=4, one user
        assert category_hit_ratio(lists, np.array([1, 3])) == pytest.approx(0.5)

    def test_averages_over_users(self):
        lists = np.array([[0, 1], [2, 3]])
        # Category {0,1}: user A has both slots, user B none -> 2/(2*2).
        assert category_hit_ratio(lists, np.array([0, 1])) == pytest.approx(0.5)

    def test_explicit_num_users_denominator(self):
        lists = np.array([[0, 1]])
        value = category_hit_ratio(lists, np.array([0, 1]), num_users=2)
        assert value == pytest.approx(0.5)

    def test_empty_category(self):
        lists = np.array([[0, 1]])
        assert category_hit_ratio(lists, np.zeros(0, dtype=int)) == 0.0

    def test_chr_percent(self):
        lists = np.array([[0, 1, 2, 3]])
        assert chr_percent(lists, np.array([0])) == pytest.approx(25.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            category_hit_ratio(np.array([0, 1]), np.array([0]))
        with pytest.raises(ValueError):
            category_hit_ratio(np.zeros((2, 0), dtype=int), np.array([0]))
        with pytest.raises(ValueError):
            category_hit_ratio(np.array([[0]]), np.array([0]), num_users=0)


class TestChrByCategory:
    def test_sums_to_one_when_all_classified(self):
        lists = np.array([[0, 1, 2], [3, 4, 5]])
        item_classes = np.array([0, 0, 1, 1, 2, 2])
        values = chr_by_category(lists, item_classes, num_classes=3)
        assert values.sum() == pytest.approx(1.0)

    def test_matches_single_category_metric(self):
        rng = np.random.default_rng(0)
        item_classes = rng.integers(0, 4, size=50)
        lists = rng.integers(0, 50, size=(7, 10))
        values = chr_by_category(lists, item_classes, num_classes=4)
        for cls in range(4):
            expected = category_hit_ratio(lists, np.flatnonzero(item_classes == cls))
            assert values[cls] == pytest.approx(expected)

    def test_unknown_item_rejected(self):
        with pytest.raises(ValueError, match="unknown items"):
            chr_by_category(np.array([[9]]), np.array([0, 1]), num_classes=2)

    def test_negative_ids_rejected_with_clear_message(self):
        # A negative id would silently wrap around in the fancy index.
        with pytest.raises(ValueError, match="negative item ids"):
            chr_by_category(np.array([[-1]]), np.array([0, 1]), num_classes=2)

    def test_requires_1d_classes(self):
        with pytest.raises(ValueError):
            chr_by_category(np.array([[0]]), np.zeros((2, 2), dtype=int), num_classes=2)

    def test_requires_2d_lists(self):
        with pytest.raises(ValueError):
            chr_by_category(np.array([0, 1]), np.array([0, 1]), num_classes=2)

    def test_report_names_and_percent(self):
        lists = np.array([[0, 1], [0, 1]])
        item_classes = np.array([0, 1])
        report = chr_report(lists, item_classes, ["sock", "shoe"])
        assert report["sock"] == pytest.approx(50.0)
        assert report["shoe"] == pytest.approx(50.0)
