"""Shared test utilities: finite-difference gradient checking and tiny fixtures."""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.nn.tensor import Tensor


def numerical_gradient(
    func: Callable[[np.ndarray], float], point: np.ndarray, eps: float = 1e-6
) -> np.ndarray:
    """Central finite-difference gradient of a scalar function at ``point``."""
    point = np.asarray(point, dtype=np.float64)
    grad = np.zeros_like(point)
    flat = point.reshape(-1)
    grad_flat = grad.reshape(-1)
    for idx in range(flat.size):
        orig = flat[idx]
        flat[idx] = orig + eps
        f_plus = func(point)
        flat[idx] = orig - eps
        f_minus = func(point)
        flat[idx] = orig
        grad_flat[idx] = (f_plus - f_minus) / (2.0 * eps)
    return grad


def check_gradient(
    op: Callable[[Tensor], Tensor],
    value: np.ndarray,
    atol: float = 1e-5,
    rtol: float = 1e-4,
) -> None:
    """Assert that autograd matches finite differences for ``sum(op(x))``."""
    value = np.asarray(value, dtype=np.float64)
    x = Tensor(value.copy(), requires_grad=True)
    out = op(x)
    out.sum().backward()
    assert x.grad is not None, "autograd produced no gradient"

    def scalar(data: np.ndarray) -> float:
        return float(op(Tensor(data)).data.sum())

    expected = numerical_gradient(scalar, value)
    np.testing.assert_allclose(x.grad, expected, atol=atol, rtol=rtol)
