"""Unit tests for classifier training and feature extraction."""

import numpy as np
import pytest

from repro.data import tiny_dataset
from repro.features import (
    ClassifierConfig,
    ClassifierTrainer,
    FeatureExtractor,
    recalibrate_batchnorm,
    train_catalog_classifier,
)
from repro.nn import TinyResNet


@pytest.fixture(scope="module")
def trained():
    ds = tiny_dataset(seed=0, image_size=16)
    model, report = train_catalog_classifier(
        ds.images,
        ds.item_categories,
        ds.num_categories,
        widths=(8, 16),
        blocks_per_stage=(1, 1),
        config=ClassifierConfig(epochs=18, batch_size=16, learning_rate=0.08, seed=0),
    )
    return ds, model, report


class TestClassifierTrainer:
    def test_loss_decreases(self, trained):
        _, _, report = trained
        assert report.train_losses[-1] < report.train_losses[0]

    def test_reaches_high_train_accuracy(self, trained):
        _, _, report = trained
        assert report.final_train_accuracy > 0.9

    def test_early_stop_respects_target(self, trained):
        _, _, report = trained
        assert report.epochs_run <= 18

    def test_eval_accuracy_populated_when_eval_given(self):
        ds = tiny_dataset(seed=1, image_size=16)
        model = TinyResNet(ds.num_categories, widths=(8,), blocks_per_stage=(1,), seed=0)
        trainer = ClassifierTrainer(model, ClassifierConfig(epochs=2, batch_size=16))
        report = trainer.fit(
            ds.images, ds.item_categories, ds.images[:10], ds.item_categories[:10]
        )
        assert 0.0 <= report.final_eval_accuracy <= 1.0

    def test_rejects_bad_shapes(self):
        model = TinyResNet(4, widths=(8,), blocks_per_stage=(1,))
        trainer = ClassifierTrainer(model, ClassifierConfig(epochs=1))
        with pytest.raises(ValueError):
            trainer.fit(np.zeros((4, 3, 8)), np.zeros(4, dtype=int))
        with pytest.raises(ValueError):
            trainer.fit(np.zeros((4, 3, 8, 8)), np.zeros(3, dtype=int))
        with pytest.raises(ValueError):
            trainer.fit(np.zeros((4, 3, 8, 8)), np.array([0, 1, 2, 9]))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ClassifierConfig(epochs=0)
        with pytest.raises(ValueError):
            ClassifierConfig(target_accuracy=0.0)

    def test_recalibrate_batchnorm_improves_eval_consistency(self):
        ds = tiny_dataset(seed=2, image_size=16)
        model = TinyResNet(ds.num_categories, widths=(8, 16), blocks_per_stage=(1, 1), seed=1)
        config = ClassifierConfig(epochs=6, batch_size=8, learning_rate=0.08, cosine_schedule=False)
        ClassifierTrainer(model, config).fit(ds.images, ds.item_categories)
        # After fit (which recalibrates), eval-mode accuracy should be close
        # to the train-mode accuracy the optimizer saw.
        probs = model.predict_proba(ds.images)
        eval_acc = (probs.argmax(axis=1) == ds.item_categories).mean()
        assert eval_acc > 0.7

    def test_recalibrate_on_model_without_bn_is_noop(self):
        from repro.nn import Linear

        layer = Linear(4, 2)
        recalibrate_batchnorm(layer, np.zeros((2, 4)))  # must not raise


class TestFeatureExtractor:
    def test_fit_transform_shapes(self, trained):
        ds, model, _ = trained
        extractor = FeatureExtractor(model)
        features = extractor.fit_transform(ds.images)
        assert features.shape == (ds.num_items, model.feature_dim)

    def test_standardised_features_centered(self, trained):
        ds, model, _ = trained
        features = FeatureExtractor(model, standardize=True).fit_transform(ds.images)
        np.testing.assert_allclose(features.mean(axis=0), 0.0, atol=1e-8)

    def test_transform_before_fit_raises(self, trained):
        ds, model, _ = trained
        extractor = FeatureExtractor(model, standardize=True)
        with pytest.raises(RuntimeError):
            extractor.transform(ds.images[:2])

    def test_no_standardize_passthrough(self, trained):
        ds, model, _ = trained
        extractor = FeatureExtractor(model, standardize=False)
        assert extractor.is_fitted
        features = extractor.transform(ds.images[:4])
        raw = model.extract_features(ds.images[:4])
        np.testing.assert_allclose(features, raw)

    def test_same_standardisation_for_new_images(self, trained):
        """Perturbed images must go through the identical affine map."""
        ds, model, _ = trained
        extractor = FeatureExtractor(model).fit(ds.images)
        a = extractor.transform(ds.images[:3])
        b = extractor.transform(ds.images[:3] + 0.0)
        np.testing.assert_allclose(a, b)

    def test_features_cluster_by_category(self, trained):
        """Within-category feature distance < between-category distance."""
        ds, model, _ = trained
        extractor = FeatureExtractor(model).fit(ds.images)
        features = extractor.transform(ds.images)
        socks = ds.items_in_category("sock")
        shoes = ds.items_in_category("running_shoe")
        within = np.linalg.norm(
            features[socks[0]] - features[socks[1]]
        )
        between = np.linalg.norm(features[socks[0]] - features[shoes[0]])
        assert between > within * 0.5  # loose but directional

    def test_transform_raw_features(self, trained):
        ds, model, _ = trained
        extractor = FeatureExtractor(model).fit(ds.images)
        raw = model.extract_features(ds.images[:2])
        np.testing.assert_allclose(
            extractor.transform_raw_features(raw), extractor.transform(ds.images[:2])
        )
