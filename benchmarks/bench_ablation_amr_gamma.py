"""Ablation — AMR's adversarial-regularizer weight γ (paper eq. 10).

The paper fixes γ = 0.1 and η = 1 following the AMR reference protocol.
This ablation retrains AMR at γ ∈ {0, 0.1, 1.0} on the same features and
measures (a) clean ranking quality and (b) the CHR uplift under a strong
TAaMR attack, exposing the robustness/accuracy trade-off the paper's
"AMR is not completely safe" discussion hints at.

γ = 0 must match plain VBPR exactly (regression guard for the AMR
implementation).
"""

import numpy as np
import pytest

from repro.attacks import PGD, epsilon_from_255
from repro.core import TAaMRPipeline, make_scenario
from repro.recommenders import AMR, AMRConfig, evaluate_ranking

GAMMAS = (0.0, 0.1, 1.0)


@pytest.fixture(scope="module")
def gamma_models(men_context):
    dataset = men_context.dataset
    config = men_context.config
    models = {}
    for gamma in GAMMAS:
        model = AMR(
            dataset.num_users,
            dataset.num_items,
            men_context.features,
            AMRConfig(
                epochs=config.recommender_epochs,
                pretrain_epochs=config.amr_pretrain_epochs,
                gamma=gamma,
                eta=config.amr_eta,
                seed=config.seed,
            ),
        ).fit(dataset.feedback)
        models[gamma] = model
    return models


def test_amr_gamma_ablation(men_context, gamma_models, benchmark):
    dataset = men_context.dataset
    scenario = make_scenario(dataset.registry, "sock", "running_shoe")
    attack = PGD(men_context.classifier, epsilon_from_255(16), num_steps=10, seed=0)

    print("\nAMR γ ablation (PGD ε=16, sock → running_shoe):")
    uplifts = {}
    for gamma, model in gamma_models.items():
        pipeline = TAaMRPipeline(
            dataset, men_context.extractor, model, cutoff=men_context.config.cutoff
        )
        outcome = pipeline.attack_category(scenario, attack)
        ranking = evaluate_ranking(model, dataset.feedback, cutoff=10)
        uplifts[gamma] = outcome.chr_source_after - outcome.chr_source_before
        print(
            f"  γ={gamma:<4}  clean AUC={ranking.auc:.3f}  "
            f"CHR {outcome.chr_source_before:.2f}% -> {outcome.chr_source_after:.2f}% "
            f"(uplift {uplifts[gamma]:+.2f}pp)"
        )

    # γ=0 equals plain VBPR training (the pretrain path runs throughout).
    vbpr_scores = men_context.vbpr.score_all()
    gamma_zero_scores = gamma_models[0.0].score_all()
    np.testing.assert_allclose(gamma_zero_scores, vbpr_scores, atol=1e-8)

    # The adversarial regularizer must not destroy ranking quality.
    for gamma, model in gamma_models.items():
        assert evaluate_ranking(model, dataset.feedback, cutoff=10).auc > 0.55

    # Benchmark one AMR adversarial-training epoch equivalent (small run).
    def train_small_amr():
        return AMR(
            dataset.num_users,
            dataset.num_items,
            men_context.features,
            AMRConfig(epochs=2, pretrain_epochs=1, gamma=0.1, seed=0),
        ).fit(dataset.feedback)

    benchmark(train_small_amr)
