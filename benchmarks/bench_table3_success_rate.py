"""Table III — targeted misclassification success probability.

Paper reference (Amazon Men, Sock → Running Shoes):

    FGSM   ε=2:  9.32%   ε=4: 17.02%   ε=8: 22.14%   ε=16: 21.68%
    PGD    ε=2: 68.69%   ε=4: 98.37%   ε=8: 99.92%   ε=16: 99.84%

Expected shape: success grows with ε and saturates; PGD dominates FGSM
by a wide margin at every budget.  On the synthetic substrate the curve
is shifted about one ε-step right (our 8-class CNN has larger margins
than ImageNet ResNet50 — see DESIGN.md), but the ordering holds.

The benchmark times one PGD-10 attack over the source category, the
dominant cost of the grid.
"""

import pytest

from repro.attacks import PGD, epsilon_from_255
from repro.experiments import format_table3, run_attack_grid


@pytest.fixture(scope="module")
def grids(men_context, women_context):
    return [
        run_attack_grid(men_context, "VBPR"),
        run_attack_grid(women_context, "VBPR"),
    ]


def test_table3_attack_success_probability(men_context, grids, benchmark):
    epsilons = men_context.config.epsilons_255
    print("\n" + format_table3(grids, epsilons))

    for grid in grids:
        for scenario in grid.scenarios:
            fgsm = sorted(
                grid.cells(scenario=scenario, attack_name="FGSM"),
                key=lambda o: o.epsilon_255,
            )
            pgd = sorted(
                grid.cells(scenario=scenario, attack_name="PGD"),
                key=lambda o: o.epsilon_255,
            )
            # (1) PGD >= FGSM at every matched budget (the paper's headline).
            for cell_fgsm, cell_pgd in zip(fgsm, pgd):
                assert cell_pgd.success_rate >= cell_fgsm.success_rate - 0.05, (
                    f"{scenario.label()} ε={cell_pgd.epsilon_255}: "
                    "FGSM beat PGD, contradicting Table III"
                )
            # (2) success grows with the budget (PGD).
            assert pgd[-1].success_rate >= pgd[0].success_rate
            # (3) the largest budget (nearly) always succeeds under PGD.
            assert pgd[-1].success_rate > 0.8

    # Benchmark: one PGD-10 attack on the source category images.
    pipeline = grids[0].pipeline
    source_items = pipeline.category_items(grids[0].scenarios[0].source)
    images = pipeline.dataset.images[source_items]
    target = pipeline.dataset.registry.by_name(grids[0].scenarios[0].target).category_id

    def one_pgd_attack():
        attack = PGD(men_context.classifier, epsilon_from_255(8), num_steps=10, seed=0)
        return attack.attack(images, target_class=target)

    result = benchmark(one_pgd_attack)
    assert result.num_images == images.shape[0]
