"""Ablation — PGD iteration count (BIM → PGD-10 → PGD-20).

The paper fixes PGD at 10 iterations (§IV-A2) and motivates it as a
stronger, random-start version of BIM.  This ablation sweeps the step
count at a fixed budget (ε = 8/255) and verifies:

* a single projected step is much weaker than 10;
* returns diminish beyond the paper's 10 iterations;
* random start (PGD) is at least as strong as none (BIM).
"""

import pytest

from repro.attacks import BIM, PGD, epsilon_from_255

EPSILON_255 = 8.0
STEP_GRID = (1, 2, 5, 10, 20)


@pytest.fixture(scope="module")
def attack_setup(men_context):
    dataset = men_context.dataset
    pipeline_source = dataset.items_in_category("sock")
    images = dataset.images[pipeline_source]
    target = dataset.registry.by_name("running_shoe").category_id
    return men_context.classifier, images, target


def test_pgd_iteration_ablation(attack_setup, benchmark):
    model, images, target = attack_setup
    epsilon = epsilon_from_255(EPSILON_255)

    rates = {}
    for steps in STEP_GRID:
        attack = PGD(model, epsilon, num_steps=steps, seed=0)
        rates[steps] = attack.attack(images, target_class=target).success_rate()
    bim_rate = BIM(model, epsilon, num_steps=10).attack(
        images, target_class=target
    ).success_rate()

    print("\nPGD steps ablation (ε = 8/255, sock → running_shoe):")
    for steps in STEP_GRID:
        print(f"  PGD-{steps:<3d} success = {rates[steps]:6.1%}")
    print(f"  BIM-10  success = {bim_rate:6.1%} (no random start)")

    # One projected step is far weaker than the paper's 10.
    assert rates[1] <= rates[10]
    # Beyond 10 iterations the gain is marginal on this substrate.
    assert rates[20] <= rates[10] + 0.15
    # Random start does not hurt.
    assert rates[10] >= bim_rate - 0.1

    benchmark(
        lambda: PGD(model, epsilon, num_steps=5, seed=0).attack(
            images[:8], target_class=target
        )
    )
