"""Engine performance — float64 baseline vs float32 optimized, same run.

Times the hot paths behind every table in the reproduction (classifier
forward, training backward, FGSM, PGD, and the full attack grid) under
the pre-optimization engine configuration (float64 compute, no conv+BN
folding) and the shipping one (float32 policy, eval-time folding,
im2col workspace reuse), using identical weights for both.

Writes ``BENCH_perf_engine.json`` at the repository root so the speedup
numbers are tracked alongside the table outputs.  The optimized engine
is expected to be at least 2x faster end to end.

The report also carries a ``ladder`` section timing the two-recommender
attack grid per grid engine (per-cell "off" vs batched "exact" vs
warm-started "warm"), all under the shipping float32 engine.  The
ladder claims: "exact" >= 2x and "warm" >= 4x grid cells/s over the
per-cell path.
"""

import os

import pytest

from repro.experiments import format_perf_report, run_perf_bench

pytestmark = pytest.mark.perf

OUT_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_perf_engine.json",
)

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.003"))


def test_perf_engine_speedup():
    payload = run_perf_bench(
        scale=BENCH_SCALE,
        repeats=2,
        include_grid=True,
        include_ladder=True,
        out_path=OUT_PATH,
        verbose=True,
    )
    print("\n" + format_perf_report(payload))

    speedup = payload["speedup"]
    # The tentpole claim: >= 2x wall-clock on the end-to-end grid (or the
    # PGD batch, its dominant cost) from the float32 + folding engine.
    assert max(speedup["attack_grid"], speedup["pgd"]) >= 2.0
    # Sanity: every stage should at least not get slower.
    for key, value in speedup.items():
        assert value > 1.0, f"stage {key} regressed: {value:.2f}x"

    # Ladder claims: batching the ε ladder gives >= 2x grid cells/s with
    # bitwise-identical outputs; warm starts + early exits give >= 4x.
    ladder = payload["ladder"]
    assert ladder["speedup"]["exact"] >= 2.0, ladder["speedup"]
    assert ladder["speedup"]["warm"] >= 4.0, ladder["speedup"]
    for mode in ("off", "exact", "warm"):
        assert ladder["modes"][mode]["cells"] == ladder["modes"]["off"]["cells"]
