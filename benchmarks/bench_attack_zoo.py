"""Extension bench — the attack zoo: all implemented attacks, one victim.

The paper's §VI plans "integrating novel adversarial attacks"; the
reproduction ships seven.  This bench runs every attack against the
same classifier and sock images (target: running shoe, where a target
applies) and prints a taxonomy table: constraint type, success rate,
mean l2 / l∞, PSNR — making the trade-offs (sign attacks vs minimal-
norm attacks vs sparse vs black-box) visible on one substrate.
"""

import numpy as np
import pytest

from repro.attacks import (
    BIM,
    CarliniWagnerL2,
    DeepFool,
    FGSM,
    JSMA,
    MIM,
    NESAttack,
    PGD,
    epsilon_from_255,
)
from repro.metrics import batch_psnr

EPSILON_255 = 16.0


@pytest.fixture(scope="module")
def victim(men_context):
    dataset = men_context.dataset
    socks = dataset.items_in_category("sock")
    target = dataset.registry.by_name("running_shoe").category_id
    return men_context.classifier, dataset.images[socks][:12], target


def run_zoo(model, images, target):
    epsilon = epsilon_from_255(EPSILON_255)
    zoo = {
        "FGSM": lambda: FGSM(model, epsilon).attack(images, target_class=target),
        "BIM": lambda: BIM(model, epsilon, num_steps=10).attack(
            images, target_class=target
        ),
        "PGD": lambda: PGD(model, epsilon, num_steps=10, seed=0).attack(
            images, target_class=target
        ),
        "MIM": lambda: MIM(model, epsilon, num_steps=10, step_size=epsilon / 4).attack(
            images, target_class=target
        ),
        "C&W": lambda: CarliniWagnerL2(model, c=20.0, num_steps=80).attack(
            images, target_class=target
        ),
        "JSMA": lambda: JSMA(model, theta=1.0, gamma=0.3, batch_pixels=16).attack(
            images, target_class=target
        ),
        "DeepFool": lambda: DeepFool(model, max_steps=30).attack(images),
        "NES": lambda: NESAttack(
            model, epsilon, num_steps=15, samples_per_step=24, seed=0
        ).attack(images, target_class=target),
    }
    return {name: run() for name, run in zoo.items()}


def test_attack_zoo(victim, benchmark):
    model, images, target = victim
    results = run_zoo(model, images, target)

    print(
        f"\nAttack zoo (sock → running_shoe where targeted, ε={EPSILON_255:.0f} "
        "for l∞ attacks):"
    )
    print(f"  {'attack':9s} {'success':>8s} {'mean l2':>8s} {'max l∞':>7s} {'PSNR':>6s}")
    stats = {}
    for name, result in results.items():
        delta = result.adversarial_images - images
        l2 = np.sqrt((delta ** 2).reshape(len(images), -1).sum(axis=1)).mean()
        linf = np.abs(delta).max()
        psnr = float(np.mean(np.minimum(batch_psnr(images, result.adversarial_images), 99)))
        stats[name] = {"l2": l2, "linf": linf, "success": result.success_rate()}
        print(
            f"  {name:9s} {result.success_rate():8.1%} {l2:8.3f} "
            f"{linf:7.3f} {psnr:6.1f}"
        )

    # Taxonomy invariants.
    # l∞ attacks stay inside the shared budget; C&W/DeepFool/JSMA may not.
    eps = epsilon_from_255(EPSILON_255)
    for name in ("FGSM", "BIM", "PGD", "MIM", "NES"):
        assert stats[name]["linf"] <= eps + 1e-9, f"{name} left its l∞ ball"
    # Iterative sign attacks dominate single-step FGSM.
    assert stats["PGD"]["success"] >= stats["FGSM"]["success"]
    # DeepFool (minimal-norm, untargeted) flips with a small perturbation.
    assert stats["DeepFool"]["success"] > 0.5
    image_norm = np.sqrt((images ** 2).reshape(len(images), -1).sum(axis=1)).mean()
    assert stats["DeepFool"]["l2"] < 0.25 * image_norm
    # C&W succeeds via optimisation rather than a fixed budget.
    assert stats["C&W"]["success"] > 0.5

    benchmark(lambda: FGSM(model, eps).attack(images[:6], target_class=target))
