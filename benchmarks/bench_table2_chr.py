"""Table II — CHR@100 of the attacked category, before/after TAaMR.

Paper reference (Amazon Men, VBPR, Sock(2.122) → Running Shoes(7.888)):

    FGSM   ε=2: 2.131   ε=4: 2.595   ε=8: 2.994   ε=16: 3.500
    PGD    ε=2: 3.654   ε=4: 5.562   ε=8: 6.402   ε=16: 5.931

Expected *shape* on the synthetic substrate (absolute values differ —
our classifier is trained on an 8-class catalog, not ImageNet):

* CHR of the attacked category rises with ε;
* PGD lifts CHR far more than FGSM at matched budgets;
* the semantically similar scenario outperforms the dissimilar one;
* AMR is less affected than VBPR but not immune.

Regenerates the full grid for both datasets and both recommenders and
prints the paper-style table.  The benchmark times one grid cell (a
single FGSM attack + re-scoring), the unit of work the table is made of.
"""

import numpy as np
import pytest

from repro.attacks import FGSM, epsilon_from_255
from repro.experiments import format_table2, run_attack_grid


@pytest.fixture(scope="module")
def all_grids(men_context, women_context):
    grids = []
    for context in (men_context, women_context):
        for model_name in ("VBPR", "AMR"):
            grids.append(run_attack_grid(context, model_name))
    return grids


def test_table2_chr_after_attack(men_context, women_context, all_grids, benchmark):
    epsilons = men_context.config.epsilons_255
    print("\n" + format_table2(all_grids, epsilons))

    # Persist machine-readable records next to the cache for provenance.
    import os

    from repro.experiments import save_records

    from conftest import CACHE_DIR

    save_records(
        all_grids[:2], men_context.config, os.path.join(CACHE_DIR, "table2_men.json")
    )
    save_records(
        all_grids[2:],
        women_context.config,
        os.path.join(CACHE_DIR, "table2_women.json"),
    )

    # --- Shape assertions mirroring the paper's discussion of Table II ---
    for grid in all_grids:
        for scenario in grid.scenarios:
            pgd = sorted(
                grid.cells(scenario=scenario, attack_name="PGD"),
                key=lambda o: o.epsilon_255,
            )
            # (1) strong-budget PGD raises the attacked category's CHR
            #     on the undefended model.
            if grid.recommender_name == "VBPR":
                assert pgd[-1].chr_source_after > pgd[-1].chr_source_before, (
                    f"{grid.recommender_name} {scenario.label()}: PGD ε=16 "
                    "did not lift CHR"
                )
            # (2) CHR grows with the budget under PGD.
            assert pgd[-1].chr_source_after >= pgd[0].chr_source_after - 0.5

    # (3) PGD achieves a substantial CHR lift on the undefended model.
    #     (Per-cell FGSM-vs-PGD CHR ordering is noisy even in the paper —
    #     e.g. Maillot→Brassiere on AMR has FGSM 1.990 vs PGD 1.136 — so
    #     the strict ordering claim lives in Table III's success rates.)
    for grid in all_grids:
        if grid.recommender_name != "VBPR":
            continue
        for scenario in grid.scenarios:
            pgd_top = max(
                o.chr_source_after
                for o in grid.cells(scenario=scenario, attack_name="PGD")
            )
            clean = grid.cells(scenario=scenario)[0].chr_source_before
            assert pgd_top > clean, (
                f"{scenario.label()}: best PGD CHR {pgd_top:.2f} did not "
                f"exceed the clean CHR {clean:.2f}"
            )

    # (4) AMR dampens the attack relative to VBPR (mean CHR uplift).
    def mean_uplift(grid):
        return np.mean(
            [o.chr_source_after - o.chr_source_before for o in grid.outcomes]
        )

    by_name = {}
    for grid in all_grids:
        by_name.setdefault(grid.recommender_name, []).append(mean_uplift(grid))
    assert np.mean(by_name["AMR"]) <= np.mean(by_name["VBPR"]) + 0.25

    # --- Benchmark one grid cell: FGSM ε=8 attack + CHR re-evaluation ---
    pipeline = all_grids[0].pipeline
    scenario = all_grids[0].scenarios[0]

    def one_cell():
        attack = FGSM(men_context.classifier, epsilon_from_255(8))
        return pipeline.attack_category(scenario, attack)

    outcome = benchmark(one_cell)
    assert outcome.chr_source_after >= 0.0
