"""Ablation — feature standardisation in the extractor.

VBPR practice standardises CNN features before the linear embedding
(our ``FeatureExtractor(standardize=True)`` default).  Under the
white-box threat model the adversary sees that transform, so it cannot
*hide* anything — but it changes the feature geometry the recommender
trains on and therefore how far a successful misclassification moves
the scores.  This ablation trains VBPR on raw vs standardised features
and compares clean ranking quality and the attack's CHR uplift.
"""

import pytest

from repro.attacks import PGD, epsilon_from_255
from repro.core import TAaMRPipeline, make_scenario
from repro.features import FeatureExtractor
from repro.recommenders import VBPR, VBPRConfig, evaluate_ranking


@pytest.fixture(scope="module")
def variants(men_context):
    dataset = men_context.dataset
    built = {}
    for standardize in (True, False):
        extractor = FeatureExtractor(
            men_context.classifier, standardize=standardize
        ).fit(dataset.images)
        features = extractor.transform(dataset.images)
        vbpr = VBPR(
            dataset.num_users,
            dataset.num_items,
            features,
            VBPRConfig(epochs=men_context.config.recommender_epochs, seed=0),
        ).fit(dataset.feedback)
        built[standardize] = TAaMRPipeline(
            dataset, extractor, vbpr, cutoff=men_context.config.cutoff
        )
    return built


def test_standardization_ablation(men_context, variants, benchmark):
    scenario = make_scenario(men_context.dataset.registry, "sock", "running_shoe")
    attack = PGD(men_context.classifier, epsilon_from_255(16), num_steps=10, seed=0)

    print("\nFeature standardisation ablation (PGD ε=16, sock → running_shoe):")
    outcomes = {}
    for standardize, pipeline in variants.items():
        outcome = pipeline.attack_category(scenario, attack)
        ranking = evaluate_ranking(
            pipeline.recommender, men_context.dataset.feedback, cutoff=10
        )
        outcomes[standardize] = outcome
        print(
            f"  standardize={str(standardize):5s}  clean AUC={ranking.auc:.3f}  "
            f"CHR {outcome.chr_source_before:.2f}% -> {outcome.chr_source_after:.2f}%  "
            f"success={outcome.success_rate:.0%}"
        )
        # Both variants remain competent recommenders and attackable.
        assert ranking.auc > 0.55
        assert outcome.success_rate > 0.8

    # The classifier-level attack succeeds identically (same images),
    # whatever the downstream feature scaling.
    assert outcomes[True].success_rate == pytest.approx(
        outcomes[False].success_rate, abs=0.05
    )

    pipeline = variants[True]
    benchmark(
        lambda: pipeline.extractor.transform(men_context.dataset.images[:64])
    )
