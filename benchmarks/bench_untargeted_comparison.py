"""Extension bench — targeted (TAaMR) vs untargeted ([20]) attacks.

The paper's central departure from Tang et al. [20] is *targeting*: [20]
perturbs images to degrade recommendation accuracy; TAaMR perturbs them
to *promote* a chosen category.  This bench runs both threat models
through one trained system at ε = 16/255 and contrasts:

* targeted sock → running_shoe: the sock category's CHR must rise;
* untargeted attack on running_shoe: the category's CHR must not rise
  (items scatter to arbitrary classes), demonstrating why the paper's
  CHR metric was needed — accuracy metrics alone cannot see promotion.
"""

import pytest

from repro.attacks import PGD, epsilon_from_255
from repro.core import TAaMRPipeline, make_scenario, run_untargeted_attack

EPSILON_255 = 16.0


@pytest.fixture(scope="module")
def pipeline(men_context):
    return TAaMRPipeline(
        men_context.dataset,
        men_context.extractor,
        men_context.vbpr,
        cutoff=men_context.config.cutoff,
    )


def test_targeted_vs_untargeted(men_context, pipeline, benchmark):
    epsilon = epsilon_from_255(EPSILON_255)
    scenario = make_scenario(men_context.dataset.registry, "sock", "running_shoe")

    targeted = pipeline.attack_category(
        scenario, PGD(men_context.classifier, epsilon, num_steps=10, seed=0)
    )
    untargeted = run_untargeted_attack(
        pipeline,
        "running_shoe",
        PGD(men_context.classifier, epsilon, num_steps=10, seed=0),
    )

    print(
        f"\nTargeted TAaMR (sock → running_shoe, ε={EPSILON_255:.0f}):\n"
        f"  sock CHR {targeted.chr_source_before:.2f}% -> "
        f"{targeted.chr_source_after:.2f}%  (success {targeted.success_rate:.0%})\n"
        f"Untargeted attack on running_shoe (ε={EPSILON_255:.0f}):\n"
        f"  running_shoe CHR {untargeted.chr_before:.2f}% -> {untargeted.chr_after:.2f}%"
        f"  (misclassified {untargeted.misclassification_rate:.0%})\n"
        f"  HR@10 {untargeted.ranking_before.hit_ratio:.3f} -> "
        f"{untargeted.ranking_after.hit_ratio:.3f}"
    )

    # Targeted promotion: the attacked category's CHR rises.
    assert targeted.chr_source_after > targeted.chr_source_before
    # Untargeted scattering: the attacked category's CHR does not rise
    # (it usually falls — its items stop looking like their own class).
    assert untargeted.chr_after <= untargeted.chr_before + 0.5
    # Both attacks flip the classifier at this budget.
    assert targeted.success_rate > 0.8
    assert untargeted.misclassification_rate > 0.8

    benchmark(
        lambda: run_untargeted_attack(
            pipeline,
            "sock",
            PGD(men_context.classifier, epsilon_from_255(8), num_steps=5, seed=0),
        )
    )
