"""Table IV — average visual quality of the attacked images.

Paper reference (Amazon Men):

    PSNR   FGSM: 41.4 → 37.1 dB as ε grows     PGD: 41.4 → 40.0 dB
    SSIM   FGSM: 0.9926 → 0.9802                PGD: 0.9926 → 0.9908
    PSM    FGSM: 0.0132 → 0.0502                PGD: 0.0328 → 0.2368

Expected shape:

* PSNR decreases and SSIM decreases as ε grows, but both stay in the
  "imperceptible" band (PSNR > 20 dB, SSIM high);
* PSM *increases* with ε and is higher for PGD than FGSM — the
  iterative attack moves layer-e features further, which is exactly why
  it fools the recommender better (the paper's Table III/IV inversion).

The benchmark times the visual-metric evaluation (PSNR + SSIM + PSM)
over one attacked category — the analysis cost of RQ2.
"""

import numpy as np
import pytest

from repro.experiments import format_table4, run_attack_grid
from repro.metrics import PerceptualSimilarity, batch_psnr, batch_ssim


@pytest.fixture(scope="module")
def grids(men_context, women_context):
    return {
        "men": run_attack_grid(men_context, "VBPR"),
        "women": run_attack_grid(women_context, "VBPR"),
    }


def test_table4_visual_quality(men_context, grids, benchmark):
    epsilons = men_context.config.epsilons_255
    for name, grid in grids.items():
        print(f"\n[{name}] " + format_table4(grid, epsilons))

    for grid in grids.values():
        for attack_name in ("FGSM", "PGD"):
            cells = sorted(
                grid.cells(attack_name=attack_name), key=lambda o: o.epsilon_255
            )
            by_eps = {}
            for outcome in cells:
                by_eps.setdefault(outcome.epsilon_255, []).append(outcome)
            eps_sorted = sorted(by_eps)
            mean_psnr = [
                np.mean([o.visual.psnr for o in by_eps[eps]]) for eps in eps_sorted
            ]
            mean_ssim = [
                np.mean([o.visual.ssim for o in by_eps[eps]]) for eps in eps_sorted
            ]
            mean_psm = [
                np.mean([o.visual.psm for o in by_eps[eps]]) for eps in eps_sorted
            ]
            # (1) distortion grows with ε ...
            assert mean_psnr[0] > mean_psnr[-1]
            assert mean_ssim[0] >= mean_ssim[-1] - 1e-6
            assert mean_psm[-1] >= mean_psm[0]
            # (2) ... but stays in the paper's "imperceptible" bands.
            assert min(mean_psnr) > 20.0
            assert min(mean_ssim) > 0.8

        # (3) PGD distorts features (PSM) at least as much as FGSM
        #     at the largest budget — the Table IV inversion.
        top_eps = max(o.epsilon_255 for o in grid.outcomes)
        psm_fgsm = np.mean(
            [
                o.visual.psm
                for o in grid.cells(attack_name="FGSM")
                if o.epsilon_255 == top_eps
            ]
        )
        psm_pgd = np.mean(
            [
                o.visual.psm
                for o in grid.cells(attack_name="PGD")
                if o.epsilon_255 == top_eps
            ]
        )
        assert psm_pgd >= psm_fgsm * 0.5

    # Benchmark: metric evaluation over one attacked set.
    grid = grids["men"]
    outcome = grid.outcomes[0]
    clean = grid.pipeline.dataset.images[outcome.attacked_item_ids]
    attacked = outcome.adversarial_images
    psm_metric = PerceptualSimilarity(men_context.classifier)

    def evaluate_metrics():
        return (
            float(np.mean(batch_psnr(clean, attacked))),
            float(np.mean(batch_ssim(clean, attacked))),
            float(np.mean(psm_metric(clean, attacked))),
        )

    psnr_value, ssim_value, psm_value = benchmark(evaluate_metrics)
    assert psnr_value > 20.0
    assert 0.0 <= ssim_value <= 1.0
    assert psm_value >= 0.0
