"""Table I — dataset statistics (|U|, |I|, |S|).

Paper reference:
    Amazon Men    |U| = 26,155   |I| = 82,630   |S| = 193,365   (|S|/|U| = 7.39)
    Amazon Women  |U| = 18,514   |I| = 76,889   |S| = 137,929   (|S|/|U| = 7.45)

The synthetic datasets scale those sizes by ``BENCH_SCALE`` and must
match the paper's *shape*: ≥5 interactions per user after filtering,
|S|/|U| ≈ 7.4, sparse interaction matrix.  The benchmark measures the
cost of building a dataset (images + interactions) at bench scale.
"""

from repro.data import PAPER_SIZES, amazon_men_like
from repro.experiments import format_table1

from conftest import BENCH_SCALE


def test_table1_dataset_statistics(men_context, women_context, benchmark):
    stats = {
        "amazon_men_like": men_context.dataset.stats(),
        "amazon_women_like": women_context.dataset.stats(),
        "paper: Amazon Men": {
            **PAPER_SIZES["amazon_men"],
            "interactions_per_user": PAPER_SIZES["amazon_men"]["interactions"]
            / PAPER_SIZES["amazon_men"]["users"],
        },
        "paper: Amazon Women": {
            **PAPER_SIZES["amazon_women"],
            "interactions_per_user": PAPER_SIZES["amazon_women"]["interactions"]
            / PAPER_SIZES["amazon_women"]["users"],
        },
    }
    print("\n" + format_table1(stats))

    # Shape assertions against the paper.
    for context in (men_context, women_context):
        row = context.dataset.stats()
        assert row["interactions_per_user"] >= 5.0  # the >=5 filter
        assert 5.5 < row["interactions_per_user"] < 10.0  # near the paper's 7.4
        assert row["density"] < 0.05  # sparse like the paper

    # Benchmark: dataset construction at a small fixed scale.
    benchmark(lambda: amazon_men_like(scale=min(BENCH_SCALE, 0.003), image_size=32))
