"""Extension bench — attack transferability across extractors.

The paper's threat model is white-box (§III-B: "the adversary holds a
full knowledge of the feature extraction model parameters").  This
bench quantifies how much that assumption matters: attacks crafted on
an independently-seeded surrogate classifier are evaluated against the
deployed extractor, for both single-step FGSM and iterative PGD and MIM
(whose momentum is designed to transfer better).
"""

import pytest

from repro.attacks import FGSM, MIM, PGD, epsilon_from_255, transfer_matrix
from repro.features import ClassifierConfig, ClassifierTrainer
from repro.nn import SimpleCNN, TinyResNet

EPSILON_255 = 16.0


@pytest.fixture(scope="module")
def models(men_context):
    """Deployed extractor + same-architecture and cross-architecture surrogates."""
    dataset = men_context.dataset
    config = men_context.config
    training = ClassifierConfig(
        epochs=config.classifier_epochs,
        batch_size=config.classifier_batch_size,
        learning_rate=config.classifier_lr,
        seed=config.seed + 100,
    )
    surrogate = TinyResNet(
        num_classes=dataset.num_categories,
        widths=config.classifier_widths,
        blocks_per_stage=config.classifier_blocks,
        seed=config.seed + 100,
    )
    ClassifierTrainer(surrogate, training).fit(dataset.images, dataset.item_categories)
    vgg_like = SimpleCNN(
        num_classes=dataset.num_categories,
        widths=config.classifier_widths,
        seed=config.seed + 200,
    )
    ClassifierTrainer(vgg_like, training).fit(dataset.images, dataset.item_categories)
    return {
        "deployed": men_context.classifier,
        "surrogate": surrogate,
        "vgg_like": vgg_like,
    }


def test_transferability_matrix(men_context, models, benchmark):
    dataset = men_context.dataset
    socks = dataset.items_in_category("sock")
    images = dataset.images[socks]
    target = dataset.registry.by_name("running_shoe").category_id
    epsilon = epsilon_from_255(EPSILON_255)

    builders = {
        "FGSM": lambda model: FGSM(model, epsilon),
        "PGD": lambda model: PGD(model, epsilon, num_steps=10, seed=0),
        "MIM": lambda model: MIM(model, epsilon, num_steps=10, step_size=epsilon / 4),
    }

    print(f"\nTransfer matrix (targeted, ε={EPSILON_255:.0f}, sock → running_shoe):")
    results = {}
    for attack_name, builder in builders.items():
        matrix = transfer_matrix(models, images, target, builder)
        results[attack_name] = matrix
        white_box = matrix["surrogate"]["surrogate"].white_box_success
        same_arch = matrix["surrogate"]["deployed"].transfer_success
        cross_arch = matrix["vgg_like"]["deployed"].transfer_success
        print(
            f"  {attack_name:5s} white-box={white_box:6.1%}  "
            f"resnet→deployed={same_arch:6.1%}  vgg→deployed={cross_arch:6.1%}"
        )

    for attack_name, matrix in results.items():
        # Diagonal = white-box success; transfer can only lose accuracy.
        diag = matrix["surrogate"]["surrogate"]
        cross = matrix["surrogate"]["deployed"]
        assert cross.transfer_success <= diag.white_box_success + 1e-9
    # Iterative white-box attacks must dominate single-step.
    assert (
        results["PGD"]["deployed"]["deployed"].white_box_success
        >= results["FGSM"]["deployed"]["deployed"].white_box_success
    )

    benchmark(
        lambda: transfer_matrix(models, images[:8], target, builders["FGSM"])
    )
