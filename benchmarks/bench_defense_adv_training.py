"""Extension bench — extractor-side defenses against TAaMR (paper §VI).

The paper's conclusion proposes evaluating "defense strategies (e.g.,
adversarial training and defensive distillation) to make the feature
extraction more robust".  This bench runs that evaluation: the same
TAaMR attack (PGD-10, ε = 8/255, sock → running shoe) against VBPR
built on three extractors —

  standard            the paper's undefended baseline
  adversarial (PGD)   Madry-style adversarial training
  distilled (T = 10)  defensive distillation

and reports targeted success rate and CHR uplift per defense.
"""

import pytest

from repro.attacks import PGD, epsilon_from_255
from repro.core import TAaMRPipeline, make_scenario
from repro.defenses import (
    AdversarialTrainer,
    AdversarialTrainingConfig,
    DistillationConfig,
    distill,
)
from repro.features import FeatureExtractor
from repro.nn import TinyResNet
from repro.recommenders import VBPR, VBPRConfig


@pytest.fixture(scope="module")
def defended_extractors(men_context):
    dataset = men_context.dataset
    config = men_context.config

    robust = TinyResNet(
        dataset.num_categories,
        widths=config.classifier_widths,
        blocks_per_stage=config.classifier_blocks,
        seed=config.seed,
    )
    AdversarialTrainer(
        robust,
        AdversarialTrainingConfig(
            epochs=max(6, config.classifier_epochs // 2),
            epsilon=epsilon_from_255(8),
            attack_steps=4,
            seed=config.seed,
        ),
    ).fit(dataset.images, dataset.item_categories)

    distilled, _ = distill(
        men_context.classifier,
        dataset.images,
        DistillationConfig(epochs=config.classifier_epochs, temperature=10.0),
    )
    return {
        "standard": men_context.classifier,
        "adversarial": robust,
        "distilled": distilled,
    }


def test_defended_extractors_reduce_attack(men_context, defended_extractors, benchmark):
    dataset = men_context.dataset
    scenario = make_scenario(dataset.registry, "sock", "running_shoe")

    print("\nDefense evaluation (PGD-10, ε = 8/255, sock → running_shoe):")
    results = {}
    for name, classifier in defended_extractors.items():
        extractor = FeatureExtractor(classifier).fit(dataset.images)
        features = extractor.transform(dataset.images)
        vbpr = VBPR(
            dataset.num_users,
            dataset.num_items,
            features,
            VBPRConfig(epochs=men_context.config.recommender_epochs, seed=0),
        ).fit(dataset.feedback)
        pipeline = TAaMRPipeline(dataset, extractor, vbpr, cutoff=men_context.config.cutoff)
        attack = PGD(classifier, epsilon_from_255(8), num_steps=10, seed=0)
        outcome = pipeline.attack_category(scenario, attack)
        accuracy = (classifier.predict(dataset.images) == dataset.item_categories).mean()
        results[name] = outcome
        print(
            f"  {name:12s} catalog acc={accuracy:6.1%}  "
            f"success={outcome.success_rate:6.1%}  "
            f"CHR {outcome.chr_source_before:.2f}% -> {outcome.chr_source_after:.2f}%"
        )

    # Adversarial training must cut the targeted success rate substantially.
    assert (
        results["adversarial"].success_rate
        <= results["standard"].success_rate - 0.2
    ), "PGD adversarial training failed to blunt the targeted attack"
    # Distillation is a weak defense (Carlini & Wagner 2017) — just assert
    # it does not make things dramatically worse.
    assert results["distilled"].success_rate <= 1.0

    # Deployment-time alternative: feature squeezing on the standard model.
    from repro.defenses import FeatureSqueezer

    squeezer = FeatureSqueezer(bits=4, median_kernel=3)
    standard = defended_extractors["standard"]
    target_class = dataset.registry.by_name(scenario.target).category_id
    attacked_images = results["standard"].adversarial_images
    squeezed_success = float(
        (squeezer.predict(standard, attacked_images) == target_class).mean()
    )
    clean_agreement = float(
        (
            squeezer.predict(standard, dataset.images[:100])
            == standard.predict(dataset.images[:100])
        ).mean()
    )
    print(
        f"  {'squeezing':12s} clean-agree={clean_agreement:6.1%}  "
        f"success={squeezed_success:6.1%}  (input transform, no retraining)"
    )
    assert squeezed_success <= results["standard"].success_rate

    # Benchmark: one adversarial-training epoch on a slice of the catalog.
    def adversarial_epoch():
        model = TinyResNet(dataset.num_categories, widths=(8, 16), seed=0, blocks_per_stage=(1, 1))
        return AdversarialTrainer(
            model,
            AdversarialTrainingConfig(epochs=1, epsilon=epsilon_from_255(8), attack_steps=2),
        ).fit(dataset.images[:64], dataset.item_categories[:64])

    benchmark.pedantic(adversarial_epoch, rounds=1, iterations=1)
