"""Fig. 2 — qualitative before/after example of one attacked product.

Paper reference: a sock image attacked with PGD (ε = 8) against VBPR on
Amazon Men goes from *sock, probability 60%, recommendation position
180th* to *running shoe, probability 100%, position 14th*.

This benchmark reproduces that single-item story: it picks the sock the
attack flips most confidently, prints its classification probabilities
and mean recommendation rank before/after, and asserts the paper's
direction (target probability ↑, rank number ↓).  The benchmark times
the per-item rank computation across all users.
"""

import numpy as np
import pytest

from repro.attacks import PGD, epsilon_from_255
from repro.core import TAaMRPipeline, make_scenario
from repro.recommenders.evaluation import recommendation_rank_of_item


@pytest.fixture(scope="module")
def fig2_setup(men_context):
    pipeline = TAaMRPipeline(
        men_context.dataset,
        men_context.extractor,
        men_context.vbpr,
        cutoff=men_context.config.cutoff,
    )
    scenario = make_scenario(men_context.dataset.registry, "sock", "running_shoe")
    attack = PGD(men_context.classifier, epsilon_from_255(8), num_steps=10, seed=0)
    outcome = pipeline.attack_category(scenario, attack)
    return pipeline, outcome


def test_fig2_single_item_story(men_context, fig2_setup, benchmark):
    pipeline, outcome = fig2_setup
    registry = men_context.dataset.registry
    target_class = registry.by_name("running_shoe").category_id

    adversarial_probs = men_context.classifier.predict_proba(outcome.adversarial_images)
    success_idx = np.flatnonzero(
        adversarial_probs.argmax(axis=1) == target_class
    )
    assert success_idx.size > 0, "PGD ε=8 flipped no sock; cannot reproduce Fig. 2"
    # The most confidently flipped item makes the cleanest Fig. 2 analog.
    best = success_idx[np.argmax(adversarial_probs[success_idx, target_class])]
    item_id = int(outcome.attacked_item_ids[best])

    report = pipeline.item_report(outcome, item_id)
    print(
        f"\nFig. 2 analog — item {item_id} (PGD ε=8 against VBPR, Amazon-Men-like):\n"
        f"  before: sock p={report.source_probability_before:.2f}, "
        f"mean rec. position {report.mean_rank_before:.0f}th\n"
        f"  after:  running shoe p={report.target_probability_after:.2f}, "
        f"mean rec. position {report.mean_rank_after:.0f}th"
    )

    # The paper's direction: target probability way up, rank way down.
    assert report.target_probability_after > 0.5
    assert report.target_probability_after > report.target_probability_before
    assert report.source_probability_after < report.source_probability_before
    assert report.mean_rank_after < report.mean_rank_before

    # Benchmark: the rank-of-item computation across all users.
    benchmark(
        recommendation_rank_of_item,
        outcome.scores_after,
        men_context.dataset.feedback,
        item_id,
    )
