"""Extension bench — the §VI finer-grained single-item attack.

The paper's conclusion proposes attacking "a single item even within
the same category (e.g., one kind of sock against another one)".  The
class-targeted attacks of the main grid cannot express that; the
:class:`ItemToItemAttack` perturbs a source image so its layer-e
features match one *specific* target item's features.

This bench picks the most-exposed running shoe as the target item,
attacks every sock toward it, and measures (a) the feature distance
collapse and (b) the mean recommendation-rank improvement of the
attacked socks — compared against class-targeted PGD at the same ε.
"""

import numpy as np
import pytest

from repro.attacks import ItemToItemAttack, PGD, epsilon_from_255
from repro.core import TAaMRPipeline
from repro.recommenders.exposure import item_exposure

EPSILON_255 = 16.0


@pytest.fixture(scope="module")
def pipeline(men_context):
    return TAaMRPipeline(
        men_context.dataset,
        men_context.extractor,
        men_context.vbpr,
        cutoff=men_context.config.cutoff,
    )


def mean_rank_of_items(pipeline, scores, item_ids):
    from repro.recommenders.evaluation import recommendation_rank_of_item

    ranks = []
    for item in item_ids:
        per_user = recommendation_rank_of_item(
            scores, pipeline.dataset.feedback, int(item)
        )
        valid = per_user[per_user > 0]
        if valid.size:
            ranks.append(valid.mean())
    return float(np.mean(ranks))


def test_item_to_item_attack(men_context, pipeline, benchmark):
    dataset = men_context.dataset
    epsilon = epsilon_from_255(EPSILON_255)
    socks = pipeline.category_items("sock")
    shoes = pipeline.category_items("running_shoe")

    # Target item: the running shoe with the most top-N exposure.
    exposure = item_exposure(pipeline.clean_top_n, dataset.num_items)
    target_item = int(shoes[np.argmax(exposure[shoes])])

    attack = ItemToItemAttack(
        men_context.classifier, epsilon, num_steps=20, seed=0
    )
    sock_images = dataset.images[socks]
    target_image = dataset.images[target_item]

    distance_before = attack.feature_distance(sock_images, target_image)
    result = attack.attack_toward_item(sock_images, target_image)
    distance_after = attack.feature_distance(result.adversarial_images, target_image)

    # Re-score with the perturbed sock features.
    features_after = pipeline.clean_features.copy()
    features_after[socks] = pipeline.extractor.transform(result.adversarial_images)
    scores_after = pipeline.recommender.score_all(features=features_after)

    rank_before = mean_rank_of_items(pipeline, pipeline.clean_scores, socks)
    rank_after = mean_rank_of_items(pipeline, scores_after, socks)

    # Reference: class-targeted PGD at the same budget.
    from repro.core import make_scenario

    scenario = make_scenario(dataset.registry, "sock", "running_shoe")
    pgd_outcome = pipeline.attack_category(
        scenario, PGD(men_context.classifier, epsilon, num_steps=10, seed=0)
    )
    pgd_rank_after = mean_rank_of_items(pipeline, pgd_outcome.scores_after, socks)

    print(
        f"\nItem-to-item attack (ε={EPSILON_255:.0f}, target item {target_item}):\n"
        f"  feature distance   {distance_before.mean():.3f} -> {distance_after.mean():.3f}\n"
        f"  mean sock rank     {rank_before:.1f} -> {rank_after:.1f} "
        f"(class-targeted PGD: {pgd_rank_after:.1f})"
    )

    # The attack must close most of the feature gap...
    assert distance_after.mean() < distance_before.mean() * 0.7
    # ...and improve the attacked items' mean rank.
    assert rank_after < rank_before

    benchmark(
        lambda: ItemToItemAttack(
            men_context.classifier, epsilon, num_steps=5, seed=0
        ).attack_toward_item(sock_images[:4], target_image)
    )
