"""Shared fixtures for the benchmark suite.

All table benchmarks reproduce the paper's evaluation on one trained
system per dataset.  Training is expensive on CPU, so the context is

* built once per pytest session (in-process registry), and
* cached to ``benchmarks/.cache`` on disk, so a second
  ``pytest benchmarks/`` run skips classifier/recommender training.

Scale knobs live here: raise ``BENCH_SCALE`` for results closer to the
paper's statistics (at proportional cost).
"""

import os

import pytest

from repro.experiments import build_context, men_config, women_config

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.006"))
CACHE_DIR = os.path.join(os.path.dirname(__file__), ".cache")

MEN_CONFIG = men_config(scale=BENCH_SCALE)
WOMEN_CONFIG = women_config(scale=BENCH_SCALE)


@pytest.fixture(scope="session")
def men_context():
    """Trained Amazon-Men-like system (dataset, classifier, VBPR, AMR)."""
    return build_context(MEN_CONFIG, cache_dir=CACHE_DIR, verbose=True)


@pytest.fixture(scope="session")
def women_context():
    """Trained Amazon-Women-like system."""
    return build_context(WOMEN_CONFIG, cache_dir=CACHE_DIR, verbose=True)

