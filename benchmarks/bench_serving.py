"""Serving-layer load benchmark — cold vs cached vs post-invalidation.

Runs the Zipf load generator against a :class:`RecommenderService`
built from a trained VBPR pipeline, in three phases: cold cache, the
same request stream replayed warm, and a replay after a PGD-perturbed
source category has been pushed through the attack surface (feature
re-extraction + incremental rescore + fine-grained invalidation).

Writes ``BENCH_serving.json`` at the repository root with throughput
and p50/p95/p99 latency per phase, cache counters and the rolling
CHR drift of the attacked category.  Marked ``serving_perf`` and
excluded from the default pytest run; the default tier instead
exercises the same harness in ``--smoke`` mode (see
``tests/serving/test_loadgen.py``).
"""

import os

import pytest

from repro.serving import format_serving_report, run_serving_bench

pytestmark = pytest.mark.serving_perf

OUT_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_serving.json",
)

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.004"))
BENCH_REQUESTS = int(os.environ.get("REPRO_BENCH_REQUESTS", "600"))


def test_serving_load_profile():
    payload = run_serving_bench(
        scale=BENCH_SCALE,
        requests=BENCH_REQUESTS,
        out_path=OUT_PATH,
        verbose=True,
    )
    print("\n" + format_serving_report(payload))

    phases = payload["phases"]
    assert set(phases) == {"cold", "warm_cache", "post_invalidation"}
    for phase in phases.values():
        assert phase["throughput_rps"] > 0
        assert phase["p50_ms"] <= phase["p95_ms"] <= phase["p99_ms"]

    # The tentpole claim: cached serving is meaningfully faster than
    # scoring from scratch (a hit is a dict lookup vs a GEMM + argpartition).
    assert payload["speedup"]["warm_vs_cold_p50"] > 1.5
    # The attack invalidates some but not all cached lists — fine-grained
    # invalidation would be pointless if every entry dropped.
    inv = payload["invalidation"]
    assert inv["scores_changed"]
    assert 0 < inv["invalidated_users"] <= inv["cached_users"]
    assert os.path.exists(OUT_PATH)
