"""Serving-layer load benchmark — cold vs cached vs post-invalidation.

Runs the Zipf load generator against a :class:`RecommenderService`
built from a trained VBPR pipeline, in four phases: cold cache, the
same request stream replayed warm, a replay after a PGD-perturbed
source category has been pushed through the attack surface (feature
re-extraction + incremental rescore + fine-grained invalidation), and
a defended replay with the reconstruction screen on the ingest path
(quarantined pushes never touch the scorer or the cache).

``test_sharded_scaling_floors`` additionally drives the multi-worker
tier (:func:`repro.serving.sharded.run_sharded_bench`) over a
synthetic 10⁵-user system at 1/2/4 workers and enforces the scaling
floors: ≥1.7× aggregate warm throughput at 2 workers and ≥3× at 4,
with zero leaked shared-memory segments.

Writes ``BENCH_serving.json`` at the repository root with throughput
and p50/p95/p99 latency per phase, cache counters, the rolling CHR
drift of the attacked category, and the sharded runs under the
``"sharded"`` key.  Marked ``serving_perf`` and excluded from the
default pytest run; the default tier instead exercises the same
harnesses in ``--smoke`` mode (see ``tests/serving/test_loadgen.py``
and the shard-smoke CI job).
"""

import json
import os

import pytest

from repro.serving import (
    format_serving_report,
    format_sharded_report,
    run_serving_bench,
    run_sharded_bench,
)

pytestmark = pytest.mark.serving_perf

OUT_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_serving.json",
)

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.004"))
BENCH_REQUESTS = int(os.environ.get("REPRO_BENCH_REQUESTS", "600"))


def test_serving_load_profile():
    payload = run_serving_bench(
        scale=BENCH_SCALE,
        requests=BENCH_REQUESTS,
        out_path=OUT_PATH,
        verbose=True,
    )
    print("\n" + format_serving_report(payload))

    phases = payload["phases"]
    assert set(phases) == {"cold", "warm_cache", "post_invalidation", "defended"}
    for phase in phases.values():
        assert phase["throughput_rps"] > 0
        assert phase["p50_ms"] <= phase["p95_ms"] <= phase["p99_ms"]
    # The defended phase carries the ingest-screen outcome.
    assert 0.0 <= phases["defended"]["detection_rate"] <= 1.0
    assert "added_p95_ms" in phases["defended"]
    assert 0.0 <= payload["screen"]["clean_false_positive_rate"] <= 1.0

    # The tentpole claim: cached serving is meaningfully faster than
    # scoring from scratch (a hit is a dict lookup vs a GEMM + argpartition).
    assert payload["speedup"]["warm_vs_cold_p50"] > 1.5
    # The attack invalidates some but not all cached lists — fine-grained
    # invalidation would be pointless if every entry dropped.
    inv = payload["invalidation"]
    assert inv["scores_changed"]
    assert 0 < inv["invalidated_users"] <= inv["cached_users"]
    assert os.path.exists(OUT_PATH)


SHARD_USERS = int(os.environ.get("REPRO_BENCH_SHARD_USERS", "100000"))
SHARD_REQUESTS = int(os.environ.get("REPRO_BENCH_SHARD_REQUESTS", "60000"))

# The scaling floors BENCH_serving.json must clear: aggregate warm
# throughput vs the 1-worker baseline, measured as capacity
# (total requests / slowest shard wall) over interleaved best-of rounds.
WARM_FLOOR_2W = 1.7
WARM_FLOOR_4W = 3.0


def test_sharded_scaling_floors():
    payload = run_sharded_bench(
        num_users=SHARD_USERS,
        requests=SHARD_REQUESTS,
        worker_counts=(1, 2, 4),
        verbose=True,
    )
    print("\n" + format_sharded_report(payload))

    assert payload["config"]["num_users"] >= 100_000
    for run in payload["runs"].values():
        phases = run["phases"]
        assert set(phases) == {"cold", "warm_cache", "post_invalidation", "defended"}
        assert 0.0 <= phases["defended"]["detection_rate"] <= 1.0
        for phase in phases.values():
            assert phase["throughput_rps"] > 0
            assert phase["p50_ms"] <= phase["p95_ms"] <= phase["p99_ms"]
            assert phase["requests"] == sum(
                shard["requests"] for shard in phase["per_shard"]
            )
        assert not run["shm"]["leaked"]
    # Every worker count serves the identical stream and applies the
    # identical push, so the invalidation totals must agree exactly.
    invalidated = {
        run["invalidation"]["invalidated_users"]
        for run in payload["runs"].values()
    }
    assert len(invalidated) == 1

    scaling = payload["scaling"]
    assert scaling["warm_2w_vs_1w"] >= WARM_FLOOR_2W, scaling
    assert scaling["warm_4w_vs_1w"] >= WARM_FLOOR_4W, scaling
    assert payload["shm"]["leaked"] == 0

    # Merge under the single-process report rather than clobbering it.
    merged = {}
    if os.path.exists(OUT_PATH):
        with open(OUT_PATH, "r", encoding="utf-8") as handle:
            merged = json.load(handle)
    merged["sharded"] = payload
    with open(OUT_PATH, "w", encoding="utf-8") as handle:
        json.dump(merged, handle, indent=2)
