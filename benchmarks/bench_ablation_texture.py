"""Ablation — the non-robust-feature (texture) calibration of the substrate.

DESIGN.md §2 substitutes real product photos with procedural images that
carry a faint category-characteristic micro-texture.  That texture is
the knob that gives the trained CNN the ε-scale vulnerability of real
ImageNet models (Ilyas et al.: classifiers latch onto non-robust
features).  This ablation trains classifiers on catalogs rendered at
three texture amplitudes and shows targeted PGD success at ε = 8/255
collapsing as the texture disappears — evidence that the substitution,
not the attack code, controls the vulnerability profile, exactly as the
reproduction claims.
"""

import numpy as np
import pytest

from repro.attacks import PGD, epsilon_from_255
from repro.data import build_dataset, men_registry
from repro.data.images import ProductImageGenerator
from repro.features import ClassifierConfig, train_catalog_classifier

TEXTURE_LEVELS = (0.0, 0.03, 0.06)


def _train_on_texture(texture_level: float):
    registry = men_registry()
    rng = np.random.default_rng(0)
    from repro.data.datasets import _allocate_items

    item_categories = _allocate_items(280, registry, rng)
    generator = ProductImageGenerator(
        registry, image_size=32, seed=0, texture_level=texture_level
    )
    images = generator.render_items(item_categories)
    model, report = train_catalog_classifier(
        images,
        item_categories,
        len(registry),
        widths=(8, 16, 32),
        blocks_per_stage=(1, 1, 1),
        config=ClassifierConfig(epochs=18, batch_size=32, learning_rate=0.08, seed=0),
    )
    socks = np.flatnonzero(
        item_categories == registry.by_name("sock").category_id
    )
    return model, images[socks], registry.by_name("running_shoe").category_id, report


def test_texture_controls_attackability(benchmark):
    print("\nTexture ablation (PGD-10, ε = 8/255, sock → running_shoe):")
    rates = {}
    accuracies = {}
    for level in TEXTURE_LEVELS:
        model, sock_images, target, report = _train_on_texture(level)
        attack = PGD(model, epsilon_from_255(8), num_steps=10, seed=0)
        rates[level] = attack.attack(sock_images, target_class=target).success_rate()
        accuracies[level] = report.final_train_accuracy
        print(
            f"  texture={level:<5}  classifier acc={accuracies[level]:6.1%}  "
            f"targeted success={rates[level]:6.1%}"
        )

    # The classifier solves the task at every texture level...
    assert all(acc > 0.9 for acc in accuracies.values())
    # ...but small-ε attackability requires the non-robust features.
    assert rates[0.06] > rates[0.0] + 0.3

    # Benchmark: rendering a textured catalog slice.
    registry = men_registry()
    generator = ProductImageGenerator(registry, image_size=32, seed=0)
    benchmark(lambda: generator.render_category_batch("sock", 16))
